// Acceptance tests for the encoded-frame shard cache: the cached path
// must be invisible on the wire — byte-identical frame streams, across
// every codec, any batch size, cursor resume boundaries, and pacing —
// while the frame cache actually takes the hits.
package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
)

// rawFrameStream fetches url as a frame-wire stream and returns the raw
// response bytes, unparsed — the unit of comparison for byte-exactness.
func rawFrameStream(t *testing.T, url string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", domain.ContentTypeFrame)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, body)
	}
	if got := resp.Header.Get(domain.HeaderWire); got != domain.WireFrame {
		t.Fatalf("%s: X-Draid-Wire %q, want %q", url, got, domain.WireFrame)
	}
	return body
}

// frameCursors parses a raw frame stream into its batch cursors.
func frameCursors(t *testing.T, stream []byte) []string {
	t.Helper()
	var cursors []string
	rest := stream
	for len(rest) > 0 {
		h, _, r, err := domain.DecodeFrame(rest)
		if err != nil {
			t.Fatal(err)
		}
		cursors = append(cursors, h.Cursor)
		rest = r
	}
	return cursors
}

// TestFrameCacheByteExact is the zero-copy acceptance proof: for every
// codec, the frame stream served by slicing the encoded-frame cache is
// byte-identical to the encode-per-request stream — cold (cache fill),
// warm (cache hit), at a different batch size, resumed from a
// mid-stream cursor, and under ?max_kbps= pacing. The reference bytes
// come from a server with the frame cache disabled; the cached server
// reads the same data dir after a restart.
func TestFrameCacheByteExact(t *testing.T) {
	dataDir := t.TempDir()
	// DisableFrameStore keeps s1 a true encode-per-request reference:
	// with the disk tier on it would serve cold frames from sidecars.
	s1, err := New(Options{Workers: 4, DataDir: dataDir, CacheBytes: 32 << 20, DisableFrameStore: true})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	// One job per codec kind: climate (samples), fusion (windowed
	// TFRecord examples), materials (BP graphs).
	specs := []JobSpec{
		{Domain: core.Climate, Seed: 3, Months: 24, Lat: 16, Lon: 32},
		{Domain: core.Fusion, Seed: 3, Shots: 8},
		{Domain: core.Materials, Seed: 3, Structures: 16},
	}
	type refStreams struct {
		id     string
		full   []byte // batch_size=2, whole stream
		odd    []byte // batch_size=3, whole stream
		cursor string // mid-stream resume point from full
		resume []byte // batch_size=2 from cursor
	}
	var refs []refStreams
	for _, spec := range specs {
		id, err := SubmitAndWait(ts1.URL, spec, 120*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", spec.Domain, err)
		}
		url := ts1.URL + "/v1/jobs/" + id + "/batches"
		r := refStreams{id: id}
		r.full = rawFrameStream(t, url+"?batch_size=2")
		r.odd = rawFrameStream(t, url+"?batch_size=3")
		cursors := frameCursors(t, r.full)
		if len(cursors) < 3 {
			t.Fatalf("%s: only %d batches", spec.Domain, len(cursors))
		}
		r.cursor = cursors[len(cursors)/2]
		r.resume = rawFrameStream(t, url+"?batch_size=2&cursor="+r.cursor)
		refs = append(refs, r)
	}
	if hits := s1.frames.Stats().Hits; hits != 0 {
		t.Fatalf("disabled frame cache recorded %d hits", hits)
	}
	ts1.Close()
	s1.Close()

	s2, err := New(Options{Workers: 2, DataDir: dataDir, CacheBytes: 32 << 20, FrameCacheBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)

	for i, r := range refs {
		dom := specs[i].Domain
		url := ts2.URL + "/v1/jobs/" + r.id + "/batches"
		// Cold: this stream fills the frame cache and must already be
		// byte-identical to the encode-per-request reference.
		if got := rawFrameStream(t, url+"?batch_size=2"); !bytes.Equal(got, r.full) {
			t.Fatalf("%s: cold cached stream differs from reference (%d vs %d bytes)", dom, len(got), len(r.full))
		}
		// Warm: same request again, now served from cached payload slices.
		if got := rawFrameStream(t, url+"?batch_size=2"); !bytes.Equal(got, r.full) {
			t.Fatalf("%s: warm cached stream differs from reference", dom)
		}
		// A different batch size re-frames the same cached payload bytes.
		if got := rawFrameStream(t, url+"?batch_size=3"); !bytes.Equal(got, r.odd) {
			t.Fatalf("%s: batch_size=3 cached stream differs from reference", dom)
		}
		// Cursor resume from a mid-stream point.
		if got := rawFrameStream(t, url+"?batch_size=2&cursor="+r.cursor); !bytes.Equal(got, r.resume) {
			t.Fatalf("%s: resumed cached stream differs from reference", dom)
		}
		// Pacing charges the sliced bytes but must not change them.
		kbps := len(r.full)/1024 + 1
		if got := rawFrameStream(t, fmt.Sprintf("%s?batch_size=2&max_kbps=%d", url, kbps)); !bytes.Equal(got, r.full) {
			t.Fatalf("%s: paced cached stream differs from reference", dom)
		}
	}

	fs := s2.frames.Stats()
	if fs.Hits == 0 {
		t.Fatalf("frame cache took no hits: %+v", fs)
	}
	if fs.Entries == 0 || fs.Bytes == 0 {
		t.Fatalf("frame cache holds nothing after serving: %+v", fs)
	}

	// NDJSON streams never touch the frame cache: same bytes, no new
	// cache traffic.
	ndjsonURL := ts2.URL + "/v1/jobs/" + refs[0].id + "/batches?batch_size=2"
	before := s2.frames.Stats()
	resp, err := http.Get(ndjsonURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) == 0 || body[0] != '{' {
		t.Fatalf("NDJSON stream looks wrong: %.60s", body)
	}
	after := s2.frames.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("NDJSON stream moved frame-cache counters: %+v -> %+v", before, after)
	}
}

// TestNegativeMaxBatchesRejected: ?max_batches=-1 is a client error,
// not an unlimited stream.
func TestNegativeMaxBatchesRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Seed: 2, Months: 12, Lat: 8, Lon: 16}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"max_batches=-1", "max_batches=-9000"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=2&" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	// Zero and positive stay valid; zero means unlimited.
	for _, q := range []string{"max_batches=0", "max_batches=2"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=2&" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("?%s: status %d, want 200", q, resp.StatusCode)
		}
	}
}
