package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// logLines joins NDJSON log records (and raw fragments, for torn
// tails) into a jobs.log body.
func logLines(t *testing.T, recs ...any) []byte {
	t.Helper()
	var out []byte
	for _, r := range recs {
		switch v := r.(type) {
		case string:
			out = append(out, v...)
		case logRecord:
			b, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b...)
			out = append(out, '\n')
		default:
			t.Fatalf("bad log line %T", r)
		}
	}
	return out
}

// TestReplayOrderingInterleaved drives replay through a log where
// evicted, provenance-bearing, and torn-tail records interleave: the
// evicted job must stay gone even though its done record carries
// provenance, the torn fragment must be skipped without desyncing later
// records, a terminal record arriving after eviction must not resurrect
// the job (its submitted record was consumed by the eviction), and the
// last terminal record must win when duplicates appear.
func TestReplayOrderingInterleaved(t *testing.T) {
	t0 := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	at := func(s int) time.Time { return t0.Add(time.Duration(s) * time.Second) }
	spec := &JobSpec{Domain: core.Climate}
	prov := json.RawMessage(`{"artifacts":{},"activities":[]}`)

	body := logLines(t,
		logRecord{Type: recSubmitted, ID: "job-000001", Time: at(0), Spec: spec},
		logRecord{Type: recSubmitted, ID: "job-000002", Time: at(1), Spec: spec},
		// Torn append in the middle of the file: must be skipped, not
		// merged into a neighbour.
		`{"type":"done","id":"job-0000`+"\n",
		logRecord{Type: recDone, ID: "job-000001", Time: at(2), Provenance: prov},
		logRecord{Type: recEvicted, ID: "job-000001", Time: at(3)},
		// Terminal for an evicted job (out-of-order writer): no
		// submitted record survives, so it must not resurrect.
		logRecord{Type: recDone, ID: "job-000001", Time: at(4), Provenance: prov},
		// Duplicate terminals: the later record wins.
		logRecord{Type: recFailed, ID: "job-000002", Time: at(5), Error: "first"},
		logRecord{Type: recDone, ID: "job-000002", Time: at(6), Provenance: prov, Servable: false},
		logRecord{Type: recSubmitted, ID: "job-000007", Time: at(7), Spec: spec},
		// Trailing torn fragment (crash mid-append at EOF).
		`{"type":"submitted","id":"job-000008","tim`,
	)
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.log")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, err := readJobLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("readJobLog parsed %d records, want 8 (torn lines skipped)", len(recs))
	}
	states, maxSeq := replayJobs(recs, "")
	if maxSeq != 7 {
		t.Fatalf("maxSeq = %d, want 7", maxSeq)
	}
	if len(states) != 2 {
		ids := make([]string, len(states))
		for i, st := range states {
			ids[i] = st.sub.ID
		}
		t.Fatalf("replay kept %v, want [job-000002 job-000007]", ids)
	}
	if states[0].sub.ID != "job-000002" || states[1].sub.ID != "job-000007" {
		t.Fatalf("replay order %s, %s", states[0].sub.ID, states[1].sub.ID)
	}
	if !states[0].hasTerm || states[0].rec.Type != recDone {
		t.Fatalf("job-000002 terminal = %+v, want the later done record", states[0].rec)
	}
	if len(states[0].rec.Provenance) == 0 {
		t.Fatal("provenance lost through replay")
	}
	if states[1].hasTerm {
		t.Fatal("job-000007 has no terminal record yet")
	}
}

// TestReplayMergesPerNodeLogs: records for one job spread across two
// members' logs on the shared dir (submitted by the owner, failed later
// by an adopter) must merge time-ordered into one coherent history.
func TestReplayMergesPerNodeLogs(t *testing.T) {
	t0 := time.Now().UTC().Truncate(time.Second)
	spec := &JobSpec{Domain: core.Climate}
	dir := t.TempDir()
	writeLog := func(name string, recs ...any) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), logLines(t, recs...), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeLog("jobs-n2.log",
		logRecord{Type: recSubmitted, ID: "job-n2-000001", Time: t0, Spec: spec, Node: "n2"},
		logRecord{Type: recSubmitted, ID: "job-n2-000002", Time: t0.Add(time.Second), Spec: spec, Node: "n2"},
	)
	writeLog("jobs-n1.log",
		logRecord{Type: recFailed, ID: "job-n2-000001", Time: t0.Add(2 * time.Second), Error: "adopted after n2 died", Node: "n1"},
	)
	recs, err := readAllJobLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	states, maxSeq := replayJobs(recs, "n2")
	if maxSeq != 2 {
		t.Fatalf("n2 maxSeq = %d, want 2", maxSeq)
	}
	if _, n1Seq := replayJobs(recs, "n1"); n1Seq != 0 {
		t.Fatalf("n1 maxSeq = %d; other members' sequences must not leak", n1Seq)
	}
	if len(states) != 2 {
		t.Fatalf("replay kept %d jobs, want 2", len(states))
	}
	if !states[0].hasTerm || states[0].rec.Error != "adopted after n2 died" {
		t.Fatalf("cross-log terminal not merged: %+v", states[0].rec)
	}
}

// TestProvenanceSurvivesRestart is the satellite acceptance: before
// this PR a replayed job had no tracker and /provenance answered 409;
// now the DAG rides the terminal log record and reimports byte-stable.
func TestProvenanceSurvivesRestart(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	id, err := SubmitAndWait(ts1.URL, JobSpec{Domain: core.Climate, Name: "p", Seed: 5}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	before := fetchProvenance(t, ts1.URL, id)
	ts1.Close()
	s1.Close()

	s2, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)
	after := fetchProvenance(t, ts2.URL, id)
	if string(before) != string(after) {
		t.Fatalf("provenance changed across restart (%d vs %d bytes)", len(before), len(after))
	}
}

func fetchProvenance(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/provenance")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("provenance status %d: %s", resp.StatusCode, b)
	}
	return b
}

// TestRequeueInterruptedJobs: with Options.Requeue a job caught
// queued/running by the crash is resubmitted with its deterministic
// seed instead of being marked failed, and completes on the restarted
// server.
func TestRequeueInterruptedJobs(t *testing.T) {
	dataDir := t.TempDir()
	release := make(chan struct{})
	s1, err := New(Options{Workers: 1, DataDir: dataDir, QueueDepth: 8,
		NewStore: pinnedStore(dataDir, release)})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	// The first job pins the single worker (its store allocation blocks
	// until shutdown); the next submission provably stays queued.
	if _, code := postJob(t, ts1.URL, JobSpec{Domain: core.Climate, Months: 12, Lat: 8, Lon: 16, Seed: 2}); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	queued, code := postJob(t, ts1.URL, JobSpec{Domain: core.Climate, Name: "rq", Seed: 9})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	go func() { <-s1.stop; close(release) }()
	ts1.Close()
	s1.Close()

	s2, err := New(Options{Workers: 2, DataDir: dataDir, Requeue: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)

	deadline := time.Now().Add(60 * time.Second)
	for {
		var st JobStatus
		if code := getJSON(t, ts2.URL+"/v1/jobs/"+queued.ID, &st); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if st.State == JobDone {
			if !st.Servable {
				t.Fatal("requeued job completed but is not servable")
			}
			break
		}
		if st.State == JobFailed {
			t.Fatalf("requeued job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("requeued job still %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The rerun is the same deterministic pipeline: its stream matches a
	// fresh run of the same spec on the same server.
	reference, err := SubmitAndWait(ts2.URL, JobSpec{Domain: core.Climate, Name: "rq-ref", Seed: 9}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := streamAll(t, ts2.URL+"/v1/jobs/"+queued.ID+"/batches?batch_size=4")
	want := streamAll(t, ts2.URL+"/v1/jobs/"+reference+"/batches?batch_size=4")
	if string(got) != string(want) {
		t.Fatalf("requeued job stream differs from deterministic rerun (%d vs %d bytes)", len(got), len(want))
	}
}

// TestRequeueOverflowFails: more interrupted jobs than queue capacity
// cannot all requeue; the overflow must come back failed, not lost.
func TestRequeueOverflowFails(t *testing.T) {
	dataDir := t.TempDir()
	// Craft a log with three interrupted jobs, then restart with a
	// 1-deep queue: one requeues, two must fail visibly.
	var body []byte
	t0 := time.Now().UTC()
	for i := 1; i <= 3; i++ {
		rec := logRecord{Type: recSubmitted, ID: fmt.Sprintf("job-%06d", i),
			Time: t0.Add(time.Duration(i) * time.Millisecond), Spec: &JobSpec{Domain: core.Climate, Seed: 3}}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		body = append(append(body, b...), '\n')
	}
	if err := os.WriteFile(filepath.Join(dataDir, "jobs.log"), body, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Workers: 1, QueueDepth: 1, DataDir: dataDir, Requeue: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)

	deadline := time.Now().Add(60 * time.Second)
	for {
		var jobs []JobStatus
		if code := getJSON(t, ts.URL+"/v1/jobs", &jobs); code != http.StatusOK {
			t.Fatalf("list status %d", code)
		}
		if len(jobs) != 3 {
			t.Fatalf("replayed %d jobs, want 3", len(jobs))
		}
		done, failed, pending := 0, 0, 0
		for _, st := range jobs {
			switch st.State {
			case JobDone:
				done++
			case JobFailed:
				failed++
			default:
				pending++
			}
		}
		if pending == 0 {
			if done != 1 || failed != 2 {
				t.Fatalf("done=%d failed=%d, want 1 requeued success and 2 overflow failures", done, failed)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs still pending: done=%d failed=%d pending=%d", done, failed, pending)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMasterKeyCreationRace: a fleet cold-starting on one shared dir
// creates the sealing key concurrently; every member must end up with
// the same complete key, never a torn read (this was a real startup
// crash: "master.key is not a hex-encoded 32-byte key").
func TestMasterKeyCreationRace(t *testing.T) {
	dir := t.TempDir()
	const racers = 8
	keys := make([][]byte, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys[i], errs[i] = loadOrCreateMasterKey(dir)
		}(i)
	}
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if len(keys[i]) != 32 {
			t.Fatalf("racer %d got %d-byte key", i, len(keys[i]))
		}
		if string(keys[i]) != string(keys[0]) {
			t.Fatalf("racer %d got a different key than racer 0", i)
		}
	}
	// No staged temp files left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, ".tmp-master-*"))
	if len(matches) != 0 {
		t.Fatalf("leftover temp key files: %v", matches)
	}
}
