// Persistent job log: an append-only NDJSON file under the data
// directory recording every job's spec, state transitions, readiness
// trajectory, shard manifest, and (for bio jobs) the per-job shard key
// sealed under a server master key. A restarted draid replays the log
// and re-serves completed jobs' shard sets straight from disk — the
// same recover-by-replay design as an audit ledger, where the log is
// the source of truth and process memory is just a cache of its tail.
package server

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/anonymize"
	"repro/internal/cluster"
	"repro/internal/shard"
	"repro/pkg/client"
)

// Log record types, one per line of jobs.log.
const (
	recSubmitted = "submitted" // job accepted into the queue
	recDone      = "done"      // pipeline finished; payload fields set
	recFailed    = "failed"    // pipeline errored (or lost to a restart)
	recEvicted   = "evicted"   // completed job expired; shards deleted
	recEvent     = "event"     // timeline-only transition (adoption, requeue)
)

// logRecord is one NDJSON line. Only the fields relevant to its Type
// are populated.
type logRecord struct {
	Type      string            `json:"type"`
	ID        string            `json:"id"`
	Time      time.Time         `json:"time"`
	Spec      *JobSpec          `json:"spec,omitempty"`
	Error     string            `json:"error,omitempty"`
	Started   time.Time         `json:"started,omitzero"`
	Records   int64             `json:"records,omitempty"`
	Servable  bool              `json:"servable,omitempty"`
	Manifest  *shard.Manifest   `json:"manifest,omitempty"`
	Traject   []TrajectoryPoint `json:"trajectory,omitempty"`
	SealedKey string            `json:"sealed_key,omitempty"` // hex(AES-GCM(master, jobKey))
	// Provenance is the job's exported lineage DAG (provenance.Report
	// JSON), persisted with the terminal record so replayed jobs keep
	// answering /v1/jobs/{id}/provenance instead of 409ing.
	Provenance json.RawMessage `json:"provenance,omitempty"`
	// Node names the fleet member that wrote the record (empty on
	// single-node logs) — observability only; ownership is always
	// recomputed from the job ID hash.
	Node string `json:"node,omitempty"`
	// Trace is the request trace ID that caused the record — on
	// submissions the client's end-to-end ID, so a job's whole timeline
	// correlates back to the submitting request across restarts.
	Trace string `json:"trace,omitempty"`
	// Event names a timeline-only transition on recEvent records —
	// lifecycle moments (adoption, requeue) that the state-bearing
	// record types cannot reconstruct on replay.
	Event string `json:"event,omitempty"`
	// Tenant owns the job (submission records; empty with auth off).
	// Persisted so ownership — and therefore visibility scoping and
	// quota charging — survives replay, adoption, and fleet restarts.
	Tenant string `json:"tenant,omitempty"`
}

// jobLog appends NDJSON records to jobs.log, syncing each append so a
// crash loses at most the record being written (which replay then
// discards as a torn tail).
type jobLog struct {
	mu sync.Mutex
	f  *os.File
}

func openJobLog(path string) (*jobLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open job log: %w", err)
	}
	// A crash mid-append leaves a torn line with no trailing newline.
	// Seal it so the next record starts on its own line instead of
	// merging into the garbage; replay skips the sealed fragment.
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		tail := make([]byte, 1)
		if _, err := f.ReadAt(tail, fi.Size()-1); err == nil && tail[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("server: seal torn job log tail: %w", err)
			}
		}
	}
	return &jobLog{f: f}, nil
}

func (l *jobLog) append(rec logRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: encode job log record: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("server: append job log: %w", err)
	}
	return l.f.Sync()
}

func (l *jobLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// readJobLog parses every complete line of the log. Unparsable lines
// (torn appends from a crash, later sealed by openJobLog) are skipped:
// a record either committed fully — one line, one fsync — or it never
// happened.
func readJobLog(path string) ([]logRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: read job log: %w", err)
	}
	defer f.Close()
	var recs []logRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec logRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("server: scan job log: %w", err)
	}
	return recs, nil
}

// readAllJobLogs merges every job log under the data dir: "jobs.log"
// (single-node) plus each fleet member's "jobs-<node>.log" on a shared
// parallel filesystem. Records are ordered by timestamp (stable, so
// same-instant records keep their per-file append order) — the merged
// view is what lets any node replay any job, which is the whole point
// of pointing a fleet at one data dir.
func readAllJobLogs(dataDir string) ([]logRecord, error) {
	paths, err := filepath.Glob(filepath.Join(dataDir, "jobs*.log"))
	if err != nil {
		return nil, fmt.Errorf("server: glob job logs: %w", err)
	}
	sort.Strings(paths)
	var all []logRecord
	for _, p := range paths {
		recs, err := readJobLog(p)
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time.Before(all[j].Time) })
	return all, nil
}

// masterKeyFile holds the 32-byte key that seals per-job bio shard
// keys inside log records, so plaintext shard keys never rest on disk.
const masterKeyFile = "master.key"

// loadOrCreateMasterKey returns the data directory's sealing key,
// creating it (0600) on first start. Creation is race-safe for a fleet
// cold-starting on one shared dir: the key is fully written to a temp
// file first and published with an atomic link that fails if the file
// exists, so a member can never read a half-written key — the loser of
// the race just reads the winner's.
func loadOrCreateMasterKey(dataDir string) ([]byte, error) {
	path := filepath.Join(dataDir, masterKeyFile)
	for attempt := 0; attempt < 2; attempt++ {
		b, err := os.ReadFile(path)
		if err == nil {
			// The key seals every job key and derives the fleet's peer-auth
			// secret: a group- or world-readable copy is a credential leak,
			// and refusing to start is the only response that gets noticed.
			if fi, serr := os.Stat(path); serr == nil {
				if mode := fi.Mode().Perm(); mode&0o077 != 0 {
					return nil, fmt.Errorf("server: %s is group/world-readable (mode %04o); chmod it to 0600", path, mode)
				}
			}
			key, derr := hex.DecodeString(strings.TrimSpace(string(b)))
			if derr != nil || len(key) != 32 {
				return nil, fmt.Errorf("server: %s is not a hex-encoded 32-byte key", path)
			}
			return key, nil
		}
		if !os.IsNotExist(err) {
			return nil, fmt.Errorf("server: read master key: %w", err)
		}
		key := make([]byte, 32)
		if _, err := rand.Read(key); err != nil {
			return nil, fmt.Errorf("server: generate master key: %w", err)
		}
		f, err := os.CreateTemp(dataDir, ".tmp-master-*")
		if err != nil {
			return nil, fmt.Errorf("server: stage master key: %w", err)
		}
		tmp := f.Name()
		if _, err := f.WriteString(hex.EncodeToString(key) + "\n"); err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(tmp)
			return nil, fmt.Errorf("server: write master key: %w", err)
		}
		err = os.Link(tmp, path)
		os.Remove(tmp)
		if err == nil {
			return key, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("server: commit master key: %w", err)
		}
		// Another member linked first; loop back and read its key.
	}
	return nil, fmt.Errorf("server: master key at %s raced and could not be read back", path)
}

// sealJobKey protects a per-job shard key for the log, binding it to
// the job ID so sealed keys cannot be swapped between records.
func sealJobKey(master, jobKey []byte, jobID string) (string, error) {
	sealed, err := anonymize.EncryptShard(master, "jobkey/"+jobID, jobKey)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(sealed), nil
}

// unsealJobKey reverses sealJobKey.
func unsealJobKey(master []byte, sealedHex, jobID string) ([]byte, error) {
	sealed, err := hex.DecodeString(sealedHex)
	if err != nil {
		return nil, fmt.Errorf("server: sealed key for %s is not hex: %w", jobID, err)
	}
	return anonymize.DecryptShard(master, "jobkey/"+jobID, sealed)
}

// replayState is a job reconstructed from the log.
type replayState struct {
	rec     logRecord // the terminal (or submitted) record
	sub     logRecord // the submitted record
	hasSub  bool
	hasTerm bool
	// events are the recEvent records seen for the job, in merged log
	// order — replayed into the timeline alongside the transitions
	// synthesized from the submitted/terminal records.
	events []logRecord
}

// replayJobs folds the log into the surviving job set, in submission
// order, and returns the highest job sequence number allocated by
// selfNode ("" for single-node logs) — other members' sequences live in
// their own ID namespace and must not advance ours.
func replayJobs(recs []logRecord, selfNode string) (jobs []*replayState, maxSeq int) {
	byID := map[string]*replayState{}
	evicted := map[string]bool{}
	var order []string
	for _, rec := range recs {
		if node, n, ok := parseJobID(rec.ID); ok && node == selfNode && n > maxSeq {
			maxSeq = n
		}
		// Eviction is forever: job IDs are never reused, so once any
		// member logged an eviction every other record for that ID is
		// dead — regardless of merge order, which cross-node clock skew
		// can perturb. Without this, a submission record sorting after
		// the eviction would resurrect a job whose shards are deleted.
		if evicted[rec.ID] {
			continue
		}
		if rec.Type == recEvicted {
			evicted[rec.ID] = true
			delete(byID, rec.ID)
			continue
		}
		st := byID[rec.ID]
		if st == nil {
			st = &replayState{}
			byID[rec.ID] = st
			order = append(order, rec.ID)
		}
		switch rec.Type {
		case recSubmitted:
			st.sub, st.hasSub = rec, true
		case recDone, recFailed:
			st.rec, st.hasTerm = rec, true
		case recEvent:
			st.events = append(st.events, rec)
		}
	}
	for _, id := range order {
		if st, ok := byID[id]; ok && st.hasSub {
			jobs = append(jobs, st)
		}
	}
	return jobs, maxSeq
}

// replayEvents reconstructs a job's lifecycle timeline from its log
// records: submitted/queued from the submission record, running and the
// terminal state from the terminal record, plus any recEvent records
// (adoption, requeue) in between. The synthesized timeline is why the
// hot path needs no per-transition log appends — the state-bearing
// records already imply the transitions.
func replayEvents(st *replayState) []JobEvent {
	ev := []JobEvent{
		{Event: client.EventSubmitted, Time: st.sub.Time, Node: st.sub.Node, Trace: st.sub.Trace},
		{Event: client.EventQueued, Time: st.sub.Time, Node: st.sub.Node, Trace: st.sub.Trace},
	}
	if st.hasTerm {
		rec := st.rec
		if !rec.Started.IsZero() {
			ev = append(ev, JobEvent{Event: client.EventRunning, Time: rec.Started, Node: rec.Node, Trace: st.sub.Trace})
		}
		name := client.EventDone
		if rec.Type == recFailed {
			name = client.EventFailed
		}
		ev = append(ev, JobEvent{Event: name, Time: rec.Time, Node: rec.Node, Detail: rec.Error, Trace: st.sub.Trace})
	}
	for _, rec := range st.events {
		ev = append(ev, JobEvent{Event: rec.Event, Time: rec.Time, Node: rec.Node, Detail: rec.Error, Trace: rec.Trace})
	}
	sort.SliceStable(ev, func(i, k int) bool { return ev[i].Time.Before(ev[k].Time) })
	return ev
}

// parseJobID splits a job ID into its allocating node and sequence:
// "job-%06d" (single-node; node is empty) or "job-<node>-%06d" (fleet;
// the node may itself contain hyphens, so the sequence is the segment
// after the last one). IDs also name shard directories, so the node
// part is held to the same safe charset cluster membership enforces.
func parseJobID(id string) (node string, seq int, ok bool) {
	rest, found := strings.CutPrefix(id, "job-")
	if !found || rest == "" {
		return "", 0, false
	}
	if i := strings.LastIndexByte(rest, '-'); i >= 0 {
		node, rest = rest[:i], rest[i+1:]
	}
	if node != "" && !cluster.ValidNodeID(node) {
		return "", 0, false
	}
	if rest == "" {
		return "", 0, false
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return "", 0, false
		}
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return "", 0, false
	}
	return node, n, true
}
