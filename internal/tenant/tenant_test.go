package tenant

import (
	"context"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTenants(t *testing.T, mode os.FileMode) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	body := `[
		{"id": "acme", "token": "acme-secret-token", "weight": 2, "max_jobs": 3},
		{"id": "ops", "token": "ops-secret-token", "admin": true}
	]`
	if err := os.WriteFile(path, []byte(body), mode); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadAndAuthenticate(t *testing.T) {
	reg, err := Load(writeTenants(t, 0o600))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	tn, ok := reg.Authenticate("acme-secret-token")
	if !ok || tn.ID != "acme" || tn.Admin {
		t.Fatalf("Authenticate(acme token) = %+v, %v", tn, ok)
	}
	if tn.EffectiveWeight() != 2 {
		t.Fatalf("weight = %d, want 2", tn.EffectiveWeight())
	}
	admin, ok := reg.Authenticate("ops-secret-token")
	if !ok || !admin.Admin {
		t.Fatalf("admin token did not authenticate as admin: %+v, %v", admin, ok)
	}
	for _, bad := range []string{"", "wrong", "acme-secret-token "} {
		if _, ok := reg.Authenticate(bad); ok {
			t.Fatalf("token %q authenticated", bad)
		}
	}
	if got, ok := reg.Get("acme"); !ok || got.ID != "acme" {
		t.Fatalf("Get(acme) = %+v, %v", got, ok)
	}
}

func TestLoadRejectsLooseFilePermissions(t *testing.T) {
	for _, mode := range []os.FileMode{0o644, 0o640, 0o604} {
		if _, err := Load(writeTenants(t, mode)); err == nil ||
			!strings.Contains(err.Error(), "group/world-readable") {
			t.Fatalf("mode %04o accepted: err=%v", mode, err)
		}
	}
	if _, err := Load(writeTenants(t, 0o600)); err != nil {
		t.Fatalf("mode 0600 rejected: %v", err)
	}
}

func TestRegistryValidation(t *testing.T) {
	cases := []struct {
		name    string
		tenants []*Tenant
		wantErr string
	}{
		{"empty", nil, "no tenants"},
		{"no id", []*Tenant{{Token: "long-enough-token"}}, "no id"},
		{"short token", []*Tenant{{ID: "a", Token: "short"}}, "at least 8"},
		{"dup id", []*Tenant{
			{ID: "a", Token: "token-aaaaaa"}, {ID: "a", Token: "token-bbbbbb"},
		}, "duplicate id"},
		{"shared token", []*Tenant{
			{ID: "a", Token: "token-shared"}, {ID: "b", Token: "token-shared"},
		}, "share a token"},
	}
	for _, tc := range cases {
		if _, err := NewRegistry(tc.tenants); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestIdentityAccess(t *testing.T) {
	cases := []struct {
		id    Identity
		owner string
		want  bool
	}{
		{Identity{ID: "acme"}, "acme", true},
		{Identity{ID: "acme"}, "rival", false},
		{Identity{ID: "acme"}, "", true}, // pre-tenancy job
		{Identity{ID: "ops", Admin: true}, "acme", true},
		{Identity{Admin: true}, "acme", true}, // fleet-internal peer
	}
	for _, tc := range cases {
		if got := tc.id.CanAccess(tc.owner); got != tc.want {
			t.Errorf("%+v.CanAccess(%q) = %v, want %v", tc.id, tc.owner, got, tc.want)
		}
	}
	ctx := WithIdentity(context.Background(), Identity{ID: "acme"})
	if got := FromContext(ctx); got.ID != "acme" {
		t.Fatalf("FromContext = %+v", got)
	}
	if got := FromContext(context.Background()); got.ID != "" || got.Admin {
		t.Fatalf("zero identity = %+v", got)
	}
}

func TestTokenFromRequest(t *testing.T) {
	r := httptest.NewRequest("GET", "/v1/jobs", nil)
	r.Header.Set("Authorization", "Bearer tok-123")
	if got := TokenFromRequest(r); got != "tok-123" {
		t.Fatalf("bearer token = %q", got)
	}
	r = httptest.NewRequest("GET", "/v1/jobs?access_token=tok-456", nil)
	if got := TokenFromRequest(r); got != "tok-456" {
		t.Fatalf("query token = %q", got)
	}
	r = httptest.NewRequest("GET", "/v1/jobs", nil)
	r.Header.Set("Authorization", "Basic dXNlcjpwYXNz")
	if got := TokenFromRequest(r); got != "" {
		t.Fatalf("non-bearer scheme yielded token %q", got)
	}
}

func TestRedaction(t *testing.T) {
	r := httptest.NewRequest("GET", "/v1/jobs/j1/batches?access_token=tok-secret&batch_size=8", nil)
	got := RedactedPath(r)
	if strings.Contains(got, "tok-secret") {
		t.Fatalf("redacted path leaks token: %s", got)
	}
	if !strings.Contains(got, "access_token=REDACTED") || !strings.Contains(got, "batch_size=8") {
		t.Fatalf("redacted path mangled: %s", got)
	}
	if q := RedactQuery(url.Values{}); q != "" {
		t.Fatalf("empty query redacted to %q", q)
	}
	if v := RedactHeaderValue("Bearer tok-secret"); v != "Bearer REDACTED" {
		t.Fatalf("RedactHeaderValue = %q", v)
	}
	if v := RedactHeaderValue(""); v != "" {
		t.Fatalf("RedactHeaderValue(empty) = %q", v)
	}
}
