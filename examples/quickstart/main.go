// Quickstart: raw synthetic climate NetCDF → fully AI-ready shards in one
// pipeline run, printing the Table 2 readiness trajectory as each stage
// completes and finishing by streaming a training batch from the shards.
package main

import (
	"fmt"
	"log"

	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/loader"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)

	// 1. Acquire raw data (here: synthesize a CMIP6-like NetCDF file).
	field, err := climate.Synthesize(climate.DefaultSynthConfig())
	if err != nil {
		log.Fatal(err)
	}
	raw, err := field.ToNetCDF()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw input: %d bytes of NetCDF, grid %v, %.2f%% missing\n",
		len(raw), field.Data.Shape(), 100*float64(field.Data.CountNaN())/float64(field.Data.Numel()))

	// 2. Run the climate archetype pipeline.
	sink := shard.NewMemSink()
	p, err := climate.NewPipeline(climate.DefaultConfig(), sink)
	if err != nil {
		log.Fatal(err)
	}
	ds := climate.NewDataset("quickstart", raw)
	snaps, err := p.Run(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreadiness trajectory:")
	for _, s := range snaps {
		fmt.Printf("  after %-18s (%-10s) -> %s\n", s.StageName, s.StageKind, s.Assessment.Level)
	}

	// 3. Inspect the final state on the maturity matrix.
	final := snaps[len(snaps)-1].Assessment
	fmt.Println("\n" + core.RenderMatrix(final))

	// 4. Consume the shards the way a trainer would.
	prod := ds.Payload.(*climate.Product)
	l, err := loader.New(sink, prod.Manifest, loader.Options{BatchSize: 8, ShuffleBuffer: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	batches, samples := 0, 0
	for b := l.Next(); b != nil; b = l.Next() {
		batches++
		samples += b.Len()
	}
	if err := l.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trainer consumed %d batches (%d samples) from %d shards + a %d-byte NPZ artifact\n",
		batches, samples, len(prod.Manifest.Shards), len(prod.NPZ))

	// 5. Provenance: full lineage of the final artifact.
	fmt.Println("\nprovenance lineage:")
	for _, act := range p.Tracker.Lineage(ds.ID()) {
		fmt.Printf("  %s  %s\n", act.ID, act.Name)
	}
	fmt.Println("\n" + p.Collector.Report())
}
