package bio

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/anonymize"
	"repro/internal/core"
	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/shard"
	"repro/internal/split"
)

// Config tunes the bio/health archetype pipeline.
type Config struct {
	TileLen     int
	KmerK       int
	KAnonymity  int
	ShardTarget int64
	// EncryptionKey seals output shards (32 bytes). Required: the bio
	// path refuses to emit plaintext shards.
	EncryptionKey []byte
	// PseudonymSecret keys the HMAC pseudonymizer (>=16 bytes).
	PseudonymSecret []byte
	Seed            int64
}

// DefaultConfig returns experiment settings with the given secrets.
func DefaultConfig(encKey, pseudoSecret []byte) Config {
	return Config{TileLen: 128, KmerK: 3, KAnonymity: 2, ShardTarget: 64 << 10,
		EncryptionKey: encKey, PseudonymSecret: pseudoSecret, Seed: 1}
}

// FusedSample is one subject's cross-modal training row.
type FusedSample struct {
	Pseudonym string
	Features  []float64 // k-mer frequencies + GC + generalized clinical values
	Target    float64
}

// Product accumulates the bio pipeline's outputs.
type Product struct {
	FASTA     string
	Sequences []Sequence
	Clinical  []anonymize.Record
	Anonymous []anonymize.AnonymizedRecord
	Audit     anonymize.AuditSummary
	Fused     []FusedSample
	Split     *split.Result
	Manifest  *shard.Manifest
	// Sealed maps shard name -> AES-GCM sealed payload.
	Sealed map[string][]byte
}

// NewDataset wraps raw FASTA + clinical records for the pipeline.
func NewDataset(name string, fasta string, clinical []anonymize.Record) *pipeline.Dataset {
	ds := pipeline.NewDataset(name, core.BioHealth, &Product{FASTA: fasta, Clinical: clinical})
	ds.Facts.RequiresPrivacy = true
	ds.Bytes = int64(len(fasta))
	ds.Records = int64(len(clinical))
	return ds
}

func product(ds *pipeline.Dataset) (*Product, error) {
	p, ok := ds.Payload.(*Product)
	if !ok {
		return nil, fmt.Errorf("bio: payload is %T, want *Product", ds.Payload)
	}
	return p, nil
}

// NewPipeline assembles the Table 1 bio/health workflow: one-hot encoding
// → anonymization → cross-modal fusion → secure sharding. The encoded
// one-hot tiles feed the fusion features; shards are sealed with AES-GCM.
func NewPipeline(cfg Config, sink shard.Sink) (*pipeline.Pipeline, error) {
	if sink == nil {
		return nil, errors.New("bio: nil sink")
	}
	if len(cfg.EncryptionKey) != 32 {
		return nil, fmt.Errorf("bio: encryption key must be 32 bytes, got %d", len(cfg.EncryptionKey))
	}
	pseudo, err := anonymize.NewPseudonymizer(cfg.PseudonymSecret)
	if err != nil {
		return nil, err
	}
	if cfg.TileLen <= 0 || cfg.KmerK <= 0 || cfg.KAnonymity <= 0 {
		return nil, fmt.Errorf("bio: invalid config %+v", cfg)
	}

	ingest := pipeline.StageFunc{StageName: "parse-fasta", StageKind: core.Ingest, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		if p.FASTA == "" {
			return errors.New("bio: no FASTA content on payload")
		}
		p.Sequences, err = ParseFASTA(p.FASTA)
		if err != nil {
			return err
		}
		if len(p.Sequences) == 0 {
			return errors.New("bio: FASTA contained no sequences")
		}
		ds.Facts.StandardFormat = true
		ds.Facts.Validated = true
		ds.Facts.MissingRate = 0
		ds.SetMeta("modalities", "sequence+clinical")
		ds.SetMeta("subjects", fmt.Sprintf("%d", len(p.Sequences)))
		ds.SetMeta("format", "FASTA + tabular clinical")
		return nil
	}}

	tile := pipeline.StageFunc{StageName: "tile-sequences", StageKind: core.Preprocess, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		for i := range p.Sequences {
			tiles, err := Tile(p.Sequences[i].Seq, cfg.TileLen)
			if err != nil {
				return err
			}
			if len(tiles) == 0 {
				return fmt.Errorf("bio: sequence %s shorter than tile length %d",
					p.Sequences[i].SubjectID, cfg.TileLen)
			}
			// Keep the first tile as the canonical sample (Enformer uses
			// fixed-length inputs); full tiling is available to callers.
			p.Sequences[i].Seq = tiles[0]
		}
		ds.Facts.AlignedGrids = true // fixed-length tiles = sequence alignment analogue
		ds.SetMeta("tile_len", fmt.Sprintf("%d", cfg.TileLen))
		return nil
	}}

	anonymizeStage := pipeline.StageFunc{StageName: "anonymize-clinical", StageKind: core.Transform, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		safe, audit, err := anonymize.Process(p.Clinical, pseudo, cfg.KAnonymity,
			anonymize.AnonymizeOptions{AgeBandWidth: 10})
		if err != nil {
			return err
		}
		p.Anonymous = safe
		p.Audit = audit
		ds.Facts.Anonymized = true
		ds.Facts.Normalized = true // clinical values banded/generalized
		ds.Facts.LabelCoverage = 1 // expression targets present for all subjects
		ds.SetMeta("k_anonymity", fmt.Sprintf("%d", audit.K))
		ds.SetMeta("suppressed", fmt.Sprintf("%d", audit.Suppressed))
		return nil
	}}

	fuse := pipeline.StageFunc{StageName: "cross-modal-fusion", StageKind: core.Structure, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		// Join modalities by pseudonym.
		byPseudo := make(map[string]anonymize.AnonymizedRecord, len(p.Anonymous))
		for _, r := range p.Anonymous {
			byPseudo[r.Pseudonym] = r
		}
		p.Fused = p.Fused[:0]
		for _, s := range p.Sequences {
			rec, ok := byPseudo[pseudo.Pseudonym(s.SubjectID)]
			if !ok {
				continue // subject suppressed by k-anonymity
			}
			kmers, err := KmerCounts(s.Seq, cfg.KmerK)
			if err != nil {
				return err
			}
			features := append(kmers, GCContent(s.Seq))
			features = append(features, rec.Values...)
			p.Fused = append(p.Fused, FusedSample{
				Pseudonym: rec.Pseudonym,
				Features:  features,
				Target:    s.Expression,
			})
		}
		if len(p.Fused) == 0 {
			return errors.New("bio: fusion produced no samples (all subjects suppressed?)")
		}
		ds.Facts.FeaturesExtracted = true
		ds.Facts.StructuredLayout = true
		ds.Records = int64(len(p.Fused))
		return nil
	}}

	secureShard := pipeline.StageFunc{StageName: "secure-shard", StageKind: core.Shard, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		res, err := split.Random(len(p.Fused), split.DefaultFractions(), cfg.Seed)
		if err != nil {
			return err
		}
		p.Split = res

		// Write plaintext shards to a staging sink, then seal each shard
		// into the real sink under AES-GCM.
		staging := shard.NewMemSink()
		w, err := shard.NewWriter(staging, shard.Options{Prefix: "bio-train", TargetBytes: cfg.ShardTarget})
		if err != nil {
			return err
		}
		for _, i := range res.Train {
			f := p.Fused[i]
			feat32 := make([]float32, len(f.Features))
			for j, v := range f.Features {
				feat32[j] = float32(v)
			}
			s := &loader.Sample{Features: feat32, Label: int32(i)}
			if err := w.Write(s.Encode()); err != nil {
				return err
			}
		}
		p.Manifest, err = w.Close()
		if err != nil {
			return err
		}
		p.Sealed = make(map[string][]byte, len(p.Manifest.Shards))
		for _, info := range p.Manifest.Shards {
			rc, err := staging.Open(info.Name)
			if err != nil {
				return err
			}
			plain, err := io.ReadAll(rc)
			if err != nil {
				return err
			}
			_ = rc.Close()
			sealed, err := anonymize.EncryptShard(cfg.EncryptionKey, info.Name, plain)
			if err != nil {
				return err
			}
			obj, err := sink.Create(info.Name + ".enc")
			if err != nil {
				return err
			}
			if _, err := obj.Write(sealed); err != nil {
				return err
			}
			if err := obj.Close(); err != nil {
				return err
			}
			p.Sealed[info.Name] = sealed
		}
		ds.Facts.SplitDone = true
		ds.Facts.Sharded = true
		ds.Facts.PipelineAutomated = true
		ds.Bytes = p.Manifest.TotalStoredBytes()
		return nil
	}}

	return pipeline.New("bio-archetype", ingest, tile, anonymizeStage, fuse, secureShard)
}
