// Spans: the structured half of the fleet's tracing story. The flat
// X-Draid-Trace ID answers "which logs belong to this request"; spans
// answer "where did the time go" — every request gets a tree of timed
// operations (queue wait, shard load, per-batch encode, pacing stalls,
// proxy hops) recorded into a bounded per-node ring store, with parent
// context propagated across fleet hops via the X-Draid-Span header so
// one trace ID assembles into a single cross-node tree.
//
// Recording is deliberately cheap and isolated: completed spans go
// into a lock-striped ring (stripe chosen by trace ID, so a whole
// trace stays collectible from one stripe) whose mutexes are private
// to the store — nothing here is ever held together with a serving or
// job-table lock. Boring traffic overwrites itself; traces whose root
// span is slow or errored are tail-sampled into a separate "notable"
// ring at root End, so the interesting 1% survives eviction by the
// boring 99%.
package telemetry

import (
	"context"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanHeader is the HTTP header carrying the parent span context
// ("<traceID>:<spanID>") across fleet hops: the proxying node stamps
// its client span, and the receiving node starts its server span as a
// child of it.
const SpanHeader = "X-Draid-Span"

// SpanContext identifies one span within one trace — what crosses the
// wire in SpanHeader.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether both halves are present and well-formed.
func (sc SpanContext) Valid() bool {
	return ValidTraceID(sc.TraceID) && ValidTraceID(sc.SpanID)
}

// String renders the header form "<traceID>:<spanID>".
func (sc SpanContext) String() string { return sc.TraceID + ":" + sc.SpanID }

// ParseSpanContext parses a SpanHeader value. Anything malformed
// returns ok=false — like trace IDs, span propagation degrades to a
// fresh root rather than failing a request.
func ParseSpanContext(s string) (SpanContext, bool) {
	traceID, spanID, found := strings.Cut(s, ":")
	sc := SpanContext{TraceID: traceID, SpanID: spanID}
	return sc, found && sc.Valid()
}

// NewSpanID mints a fresh 16-hex-char span ID (same alphabet and
// entropy as trace IDs; spans and traces share the validator).
func NewSpanID() string { return NewTraceID() }

// SpanData is one completed span — the JSON document /v1/traces serves
// and peers exchange during cross-node assembly.
type SpanData struct {
	TraceID string            `json:"trace"`
	SpanID  string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Node    string            `json:"node,omitempty"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Error   string            `json:"error,omitempty"`
	// Root marks the span a request root on its node (the middleware
	// span). Root Ends drive tail sampling and the trace list.
	Root bool `json:"root,omitempty"`
}

// Duration is the span's wall-clock extent.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// TraceSummary is one row of the trace list: the root span's identity
// and outcome plus how much of the trace this node holds.
type TraceSummary struct {
	TraceID    string    `json:"trace"`
	Root       string    `json:"root"`
	Node       string    `json:"node,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Error      string    `json:"error,omitempty"`
	Spans      int       `json:"spans"`
	Notable    bool      `json:"notable,omitempty"`
	// Tenant is the authenticated tenant of the root span's request
	// (from the root's "tenant" attribute; empty when auth is off) —
	// what lets /v1/traces scope its listing per tenant.
	Tenant string `json:"tenant,omitempty"`
}

// Span is a live (unended) span. The zero/nil span is a valid no-op:
// every method tolerates a nil receiver, so instrumentation sites never
// need to check whether tracing is wired up.
type Span struct {
	store *SpanStore

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Context returns the span's propagation context (zero when nil).
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: sp.data.TraceID, SpanID: sp.data.SpanID}
}

// SetAttr attaches one key=value attribute.
func (sp *Span) SetAttr(k, v string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.data.Attrs == nil {
		sp.data.Attrs = make(map[string]string, 4)
	}
	sp.data.Attrs[k] = v
	sp.mu.Unlock()
}

// SetError marks the span failed. A failed root makes its whole trace
// notable at End.
func (sp *Span) SetError(msg string) {
	if sp == nil || msg == "" {
		return
	}
	sp.mu.Lock()
	sp.data.Error = msg
	sp.mu.Unlock()
}

// End stamps the end time and records the completed span into the
// store. Idempotent: only the first End records.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	sp.data.End = time.Now()
	d := sp.data
	sp.mu.Unlock()
	sp.store.Record(d)
}

// spanCtxKey carries the active span through a context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the context's active span (nil when none).
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan starts a child of the context's active span, returning a
// context carrying the child. With no active span it returns the
// context unchanged and a nil (no-op) span — callers instrument
// unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.store.start(name, parent.Context(), parent.data.Node, false)
	return ContextWithSpan(ctx, child), child
}

// spanStripes fixes the store's lock striping. A power of two; spans
// stripe by trace ID so one trace's spans collect under one lock.
const spanStripes = 16

// spanStripe is one ring of completed spans under its own mutex.
type spanStripe struct {
	mu   sync.Mutex
	ring []SpanData
	next int
}

// notableTrace is one tail-sampled trace in the notable ring.
type notableTrace struct {
	traceID string
	spans   []SpanData
}

// SpanStoreStats is the store's scrape-time accounting.
type SpanStoreStats struct {
	Recorded uint64 // spans recorded since start
	Dropped  uint64 // spans overwritten by ring pressure
	Notable  uint64 // traces tail-sampled as notable
	Resident int    // spans currently held in the recent rings
}

// SpanStore is a bounded per-node store of completed spans: a
// lock-striped recent ring plus a tail-sampled notable ring. Safe for
// concurrent use; none of its locks are shared with any caller.
type SpanStore struct {
	node       string
	slow       time.Duration
	stripes    [spanStripes]spanStripe
	maxNotable int

	notableMu sync.Mutex
	notable   []notableTrace // newest last

	recorded atomic.Uint64
	dropped  atomic.Uint64
	notables atomic.Uint64
}

// NewSpanStore returns a store retaining up to capacity recent spans
// (<=0 means 4096) and maxNotable tail-sampled traces (<=0 means 32).
// Roots lasting at least slow — or ending in error — make their trace
// notable; slow <= 0 means 250ms.
func NewSpanStore(node string, capacity, maxNotable int, slow time.Duration) *SpanStore {
	if capacity <= 0 {
		capacity = 4096
	}
	if maxNotable <= 0 {
		maxNotable = 32
	}
	if slow <= 0 {
		slow = 250 * time.Millisecond
	}
	perStripe := capacity / spanStripes
	if perStripe < 4 {
		perStripe = 4
	}
	st := &SpanStore{node: node, slow: slow, maxNotable: maxNotable}
	for i := range st.stripes {
		st.stripes[i].ring = make([]SpanData, perStripe)
	}
	return st
}

// SlowThreshold reports the tail-sampling latency threshold.
func (st *SpanStore) SlowThreshold() time.Duration { return st.slow }

// StartRoot starts a request root span. A valid parent (the proxying
// node's span, from SpanHeader) links the root under it and adopts its
// trace ID; otherwise trace falls back to the given request trace ID
// (or a fresh one). Root Ends apply tail sampling.
func (st *SpanStore) StartRoot(name, traceID string, parent SpanContext) *Span {
	if parent.Valid() {
		return st.start(name, parent, st.node, true)
	}
	if !ValidTraceID(traceID) {
		traceID = NewTraceID()
	}
	return st.start(name, SpanContext{TraceID: traceID}, st.node, true)
}

// StartChild starts a span under an explicit parent context — for work
// that outlives the request that caused it (job execution under the
// submission's span context). The parent may already have ended.
func (st *SpanStore) StartChild(name string, parent SpanContext) *Span {
	return st.start(name, parent, st.node, false)
}

func (st *SpanStore) start(name string, parent SpanContext, node string, root bool) *Span {
	if st == nil {
		return nil
	}
	traceID := parent.TraceID
	if !ValidTraceID(traceID) {
		traceID = NewTraceID()
	}
	return &Span{
		store: st,
		data: SpanData{
			TraceID: traceID,
			SpanID:  NewSpanID(),
			Parent:  parent.SpanID,
			Name:    name,
			Node:    node,
			Start:   time.Now(),
			Root:    root,
		},
	}
}

// Record inserts one completed span (End must not precede Start; such
// spans are clamped to zero duration rather than rejected — tracing
// never fails the traced operation). Recording a root applies the
// tail-sampling rule: a slow or errored root copies its trace's spans
// into the notable ring.
func (st *SpanStore) Record(d SpanData) {
	if st == nil || d.TraceID == "" || d.SpanID == "" {
		return
	}
	if d.End.Before(d.Start) {
		d.End = d.Start
	}
	if d.Node == "" {
		d.Node = st.node
	}
	s := &st.stripes[stripeOf(d.TraceID)]
	s.mu.Lock()
	if s.ring[s.next].SpanID != "" {
		st.dropped.Add(1)
	}
	s.ring[s.next] = d
	s.next = (s.next + 1) % len(s.ring)
	var captured []SpanData
	if d.Root && (d.Error != "" || d.End.Sub(d.Start) >= st.slow) {
		// Collect the trace's spans while still holding the stripe —
		// they all live here, by construction of the striping.
		for _, sp := range s.ring {
			if sp.TraceID == d.TraceID && sp.SpanID != "" {
				captured = append(captured, sp)
			}
		}
	}
	s.mu.Unlock()
	st.recorded.Add(1)
	if captured != nil {
		st.capture(d.TraceID, captured)
	}
}

// capture files a trace into the notable ring, replacing an existing
// entry for the same trace (a trace can go notable more than once —
// e.g. two slow requests sharing a pinned ID) and evicting the oldest
// notable when full.
func (st *SpanStore) capture(traceID string, spans []SpanData) {
	st.notableMu.Lock()
	defer st.notableMu.Unlock()
	for i := range st.notable {
		if st.notable[i].traceID == traceID {
			st.notable[i].spans = mergeSpans(st.notable[i].spans, spans)
			return
		}
	}
	st.notables.Add(1)
	st.notable = append(st.notable, notableTrace{traceID: traceID, spans: spans})
	if len(st.notable) > st.maxNotable {
		st.notable = st.notable[len(st.notable)-st.maxNotable:]
	}
}

// mergeSpans unions two span sets by span ID, keeping a's entries.
func mergeSpans(a, b []SpanData) []SpanData {
	seen := make(map[string]bool, len(a))
	for _, sp := range a {
		seen[sp.SpanID] = true
	}
	for _, sp := range b {
		if !seen[sp.SpanID] {
			a = append(a, sp)
		}
	}
	return a
}

// Trace returns every span this node holds for one trace ID — recent
// ring and notable ring merged, deduplicated by span ID, sorted by
// start time. Empty when the node never saw (or already evicted) the
// trace.
func (st *SpanStore) Trace(traceID string) []SpanData {
	if st == nil || traceID == "" {
		return nil
	}
	var out []SpanData
	s := &st.stripes[stripeOf(traceID)]
	s.mu.Lock()
	for _, sp := range s.ring {
		if sp.TraceID == traceID && sp.SpanID != "" {
			out = append(out, sp)
		}
	}
	s.mu.Unlock()
	st.notableMu.Lock()
	for _, nt := range st.notable {
		if nt.traceID == traceID {
			out = mergeSpans(out, nt.spans)
		}
	}
	st.notableMu.Unlock()
	sortSpans(out)
	return out
}

// Summaries lists the traces this node knows about — one row per root
// span, notable traces flagged — newest first.
func (st *SpanStore) Summaries() []TraceSummary {
	if st == nil {
		return nil
	}
	notableIDs := make(map[string]bool)
	var out []TraceSummary
	seen := make(map[string]bool)
	counted := make(map[string]bool) // span IDs tallied into counts
	counts := make(map[string]int)   // trace ID -> resident span count
	tally := func(sp SpanData) {
		if sp.SpanID == "" || counted[sp.TraceID+"/"+sp.SpanID] {
			return
		}
		counted[sp.TraceID+"/"+sp.SpanID] = true
		counts[sp.TraceID]++
	}
	add := func(sp SpanData, notable bool) {
		tally(sp)
		if !sp.Root || sp.SpanID == "" || seen[sp.SpanID] {
			return
		}
		seen[sp.SpanID] = true
		out = append(out, TraceSummary{
			TraceID:    sp.TraceID,
			Root:       sp.Name,
			Node:       sp.Node,
			Start:      sp.Start,
			DurationMs: float64(sp.End.Sub(sp.Start).Microseconds()) / 1000,
			Error:      sp.Error,
			Notable:    notable,
			Tenant:     sp.Attrs["tenant"],
		})
	}
	st.notableMu.Lock()
	for _, nt := range st.notable {
		notableIDs[nt.traceID] = true
		for _, sp := range nt.spans {
			add(sp, true)
		}
	}
	st.notableMu.Unlock()
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.Lock()
		for _, sp := range s.ring {
			add(sp, notableIDs[sp.TraceID])
		}
		s.mu.Unlock()
	}
	for i := range out {
		out[i].Spans = counts[out[i].TraceID]
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// Names returns the distinct span names currently resident — the
// documentation-hygiene hook (every emitted name must appear in the
// README's span table).
func (st *SpanStore) Names() []string {
	names := make(map[string]bool)
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.Lock()
		for _, sp := range s.ring {
			if sp.SpanID != "" {
				names[sp.Name] = true
			}
		}
		s.mu.Unlock()
	}
	st.notableMu.Lock()
	for _, nt := range st.notable {
		for _, sp := range nt.spans {
			names[sp.Name] = true
		}
	}
	st.notableMu.Unlock()
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the store's counters.
func (st *SpanStore) Stats() SpanStoreStats {
	resident := 0
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.Lock()
		for _, sp := range s.ring {
			if sp.SpanID != "" {
				resident++
			}
		}
		s.mu.Unlock()
	}
	return SpanStoreStats{
		Recorded: st.recorded.Load(),
		Dropped:  st.dropped.Load(),
		Notable:  st.notables.Load(),
		Resident: resident,
	}
}

// sortSpans orders spans by start time (span ID tiebreak) — the order
// /v1/traces serves and trees render from.
func sortSpans(spans []SpanData) {
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// MergeTraces unions span fragments from several nodes into one
// sorted, deduplicated trace — the cross-node assembly primitive.
func MergeTraces(fragments ...[]SpanData) []SpanData {
	var out []SpanData
	for _, f := range fragments {
		out = mergeSpans(out, f)
	}
	sortSpans(out)
	return out
}

func stripeOf(traceID string) int {
	h := fnv.New32a()
	h.Write([]byte(traceID))
	return int(h.Sum32() % spanStripes)
}
