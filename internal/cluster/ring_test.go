package cluster

import (
	"fmt"
	"math"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2"}, 64) // order must not matter
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job-%06d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s owned by %s vs %s depending on member order", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 128)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("job-%06d", i))]++
	}
	for id, n := range counts {
		frac := float64(n) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.0f%% of keys — ring badly unbalanced: %v", id, frac*100, counts)
		}
	}
	shares := r.Shares()
	var total float64
	for _, s := range shares {
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", total)
	}
}

// TestRingMinimalMovement is the consistent-hashing property the
// failover design rests on: removing one node must only move the keys
// that node owned — every other key keeps its owner, so node loss
// re-homes exactly the dead node's jobs.
func TestRingMinimalMovement(t *testing.T) {
	full := NewRing([]string{"n1", "n2", "n3"}, 64)
	without2 := NewRing([]string{"n1", "n3"}, 64)
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("job-%06d", i)
		before, after := full.Owner(key), without2.Owner(key)
		if before == "n2" {
			if after == "n2" {
				t.Fatalf("key %s still owned by removed node", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved %s→%s though its owner survived", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if owner := NewRing(nil, 8).Owner("x"); owner != "" {
		t.Fatalf("empty ring owner = %q, want empty", owner)
	}
	r := NewRing([]string{"solo"}, 8)
	for i := 0; i < 50; i++ {
		if r.Owner(fmt.Sprintf("k%d", i)) != "solo" {
			t.Fatal("single-member ring must own every key")
		}
	}
}
