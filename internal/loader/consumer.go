package loader

import (
	"errors"
	"time"
)

// ConsumeStats reports how a simulated training consumer experienced the
// loader: total batches, wall time, and time spent stalled waiting for
// data — the metric that decides whether a dataset is *operationally*
// AI-ready (paper §2.2: data must "interface efficiently with
// GPU-accelerated AI training pipelines"; an input pipeline that stalls
// the accelerator is not ready regardless of format).
type ConsumeStats struct {
	Batches  int
	Samples  int
	Wall     time.Duration
	Stall    time.Duration
	StepTime time.Duration
}

// StallFraction returns the share of wall time the consumer spent blocked
// on the loader.
func (s ConsumeStats) StallFraction() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Stall) / float64(s.Wall)
}

// Consume drains the loader while emulating a trainer that spends
// stepTime of compute per batch. It measures the loader-induced stall:
// time spent in Next() beyond the compute overlap.
func Consume(l *Loader, stepTime time.Duration) (ConsumeStats, error) {
	if l == nil {
		return ConsumeStats{}, errors.New("loader: nil loader")
	}
	stats := ConsumeStats{StepTime: stepTime}
	start := time.Now()
	for {
		waitStart := time.Now()
		b := l.Next()
		if b == nil {
			break
		}
		stats.Stall += time.Since(waitStart)
		stats.Batches++
		stats.Samples += b.Len()
		if stepTime > 0 {
			time.Sleep(stepTime) // the "GPU step"
		}
	}
	stats.Wall = time.Since(start)
	return stats, l.Err()
}
