package climate

import (
	"math"
	"testing"

	"repro/internal/formats/npy"
	"repro/internal/shard"
)

func TestSynthesizeVars(t *testing.T) {
	cfg := SynthConfig{Months: 6, Lat: 10, Lon: 20, Seed: 31}
	fields, err := SynthesizeVars(cfg, []string{"tas", "pr", "psl"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 3 {
		t.Fatalf("fields=%d", len(fields))
	}
	tas, pr, psl := fields[0], fields[1], fields[2]
	if tas.Units != "K" || pr.Units != "kg m-2 s-1" || psl.Units != "Pa" {
		t.Fatalf("units: %q %q %q", tas.Units, pr.Units, psl.Units)
	}
	// Precipitation is non-negative.
	if pr.Data.Min() < 0 {
		t.Fatalf("pr min=%v", pr.Data.Min())
	}
	// Pressure near 1 atm.
	if psl.Data.Mean() < 95000 || psl.Data.Mean() > 108000 {
		t.Fatalf("psl mean=%v", psl.Data.Mean())
	}
	// ITCZ: equatorial rain exceeds polar rain.
	eq, pole := 0.0, 0.0
	for tt := 0; tt < 6; tt++ {
		for j := 0; j < 20; j++ {
			eq += pr.Data.At(tt, 5, j)
			pole += pr.Data.At(tt, 0, j)
		}
	}
	if eq <= pole {
		t.Fatalf("no ITCZ structure: eq=%v pole=%v", eq, pole)
	}
}

func TestSynthesizeVarsErrors(t *testing.T) {
	cfg := SynthConfig{Months: 2, Lat: 4, Lon: 4, Seed: 1}
	if _, err := SynthesizeVars(cfg, nil); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := SynthesizeVars(cfg, []string{"bogus"}); err == nil {
		t.Fatal("want unknown-variable error")
	}
}

func TestFieldsToNetCDFRoundTrip(t *testing.T) {
	cfg := SynthConfig{Months: 4, Lat: 6, Lon: 12, MissingRate: 0.01, Seed: 32}
	fields, err := SynthesizeVars(cfg, []string{"tas", "pr"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FieldsToNetCDF(fields)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tas", "pr"} {
		f, err := FromNetCDF(b, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f.Data.Dim(0) != 4 {
			t.Fatalf("%s shape=%v", name, f.Data.Shape())
		}
	}
	if _, err := FieldsToNetCDF(nil); err == nil {
		t.Fatal("want empty error")
	}
}

func TestMultiVariablePipeline(t *testing.T) {
	cfg := SynthConfig{Months: 24, Lat: 12, Lon: 24, MissingRate: 0.01, Seed: 33}
	fields, err := SynthesizeVars(cfg, []string{"tas", "pr", "psl"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := FieldsToNetCDF(fields)
	if err != nil {
		t.Fatal(err)
	}
	sink := shard.NewMemSink()
	pcfg := Config{
		Variables: []string{"tas", "pr", "psl"},
		TargetLat: 6, TargetLon: 12, Method: Bilinear, Workers: 4,
		ShardTargetBytes: 16 << 10, Seed: 1,
	}
	p, err := NewPipeline(pcfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("multi", raw)
	if _, err := p.Run(ds); err != nil {
		t.Fatal(err)
	}
	prod := ds.Payload.(*Product)
	if len(prod.Fields) != 3 {
		t.Fatalf("fields=%d", len(prod.Fields))
	}
	// Each variable is independently normalized.
	if len(prod.Stats) != 3 {
		t.Fatalf("stats=%v", prod.Stats)
	}
	for name, st := range prod.Stats {
		if st[1] <= 0 {
			t.Fatalf("%s std=%v", name, st[1])
		}
	}
	for _, f := range prod.Fields {
		if math.Abs(f.Data.Mean()) > 1e-6 {
			t.Fatalf("%s not normalized: mean=%v", f.Name, f.Data.Mean())
		}
	}
	// pr and tas had very different scales; post-normalization both are
	// unit-scale (the reason per-variable normalization matters).
	// Samples concatenate all three variables.
	if got := len(prod.Samples[0].Features); got != 3*6*12 {
		t.Fatalf("feature dims=%d", got)
	}
	// NPZ holds one member + stats per variable plus legacy members.
	arrs, err := npy.ReadNPZBytes(prod.NPZ)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tas", "pr", "psl", "tas_stats", "pr_stats", "psl_stats", "mean", "std"} {
		if _, ok := arrs[name]; !ok {
			t.Fatalf("NPZ missing %q (have %d members)", name, len(arrs))
		}
	}
	// Stats members let a consumer denormalize: check tas round trip.
	st := arrs["tas_stats"].Data
	tas := arrs["tas"]
	sample := tas.Data[0]*st[1] + st[0]
	if sample < 200 || sample > 330 {
		t.Fatalf("denormalized tas=%v not Kelvin-plausible", sample)
	}
}

func TestMultiVariableMissingVarFails(t *testing.T) {
	field, _ := Synthesize(SynthConfig{Months: 2, Lat: 4, Lon: 8, Seed: 1})
	raw, _ := field.ToNetCDF()
	p, err := NewPipeline(Config{Variables: []string{"tas", "pr"},
		TargetLat: 2, TargetLon: 4}, shard.NewMemSink())
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("missing-var", raw)
	if _, err := p.Run(ds); err == nil {
		t.Fatal("want missing-variable error")
	}
}
