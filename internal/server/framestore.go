// The disk tier of the zero-copy frame path. PR 7 made warm frame
// serving zero-copy (cached payload slices); this file makes the COLD
// path cheap too: completed jobs carry per-shard frame-ready sidecars
// (domain.Sidecar, "<shard>.fpay"), so a frame stream over a job whose
// caches are empty is served by verifying the sidecar's CRCs and
// io.CopyN-ing payload byte ranges straight off the store — zero codec
// Encode/Decode calls. Every frame-wire shard read resolves through
// frameSourceFor:
//
//	frame cache on  → frameShard fill, which itself prefers the sidecar
//	                  (one read + CRC) over decode+encode
//	sidecar usable  → stream directly from the store via RangeOpener
//	                  (or a whole read for sealed/bio stores)
//	otherwise       → decode+encode for this request and backfill the
//	                  sidecar so the next cold stream takes the fast path
//
// A torn, truncated, or bit-flipped sidecar is rejected by its CRCs
// and the stream silently falls back — corrupt bytes are never served.
package server

import (
	"bytes"
	"fmt"
	"io"

	"context"

	"repro/internal/domain"
	"repro/internal/shard"
)

// frameSource is one shard's frame payload, sliceable by record range:
// either in-memory pre-encoded bytes (*encodedShard, from the frame
// cache or a per-request encode) or an on-store sidecar streamed by
// range (*sidecarStream).
type frameSource interface {
	count() int
	rangeLen(a, b int) int
	writeRange(w io.Writer, a, b int) error
}

// sidecarStream serves a shard's payload ranges straight off the
// store — the fully-cold path that never touches either cache.
type sidecarStream struct {
	sc *domain.Sidecar
}

func (s *sidecarStream) count() int                             { return s.sc.Count() }
func (s *sidecarStream) rangeLen(a, b int) int                  { return int(s.sc.RangeLen(a, b)) }
func (s *sidecarStream) writeRange(w io.Writer, a, b int) error { return s.sc.WriteRange(w, a, b) }

// frameStoreHandle snapshots what the sidecar paths need from a job:
// its raw store, per-job key, and domain.
func (j *Job) frameStoreHandle() (shard.Store, []byte, domain.Spec) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.store, j.key, j.spec
}

// openFrameSidecar opens one shard's sidecar and verifies its
// metadata (format CRC, kind, record count against the manifest).
// ok=false means "no usable sidecar" — absent (silent) or corrupt
// (error-counted and logged) — and the caller falls back to
// decode+encode. The payload CRC is NOT checked here; callers verify
// it via Payload (cache fill) or VerifyPayload (range streaming)
// before any byte reaches a client.
func (s *Server) openFrameSidecar(job *Job, info shard.Info, codec domain.Codec) (*domain.Sidecar, io.Closer, bool) {
	store, key, spec := job.frameStoreHandle()
	if store == nil {
		return nil, nil, false
	}
	plug, err := domain.Lookup(spec.Domain)
	if err != nil {
		return nil, nil, false
	}
	sealed := key != nil
	name := domain.SidecarName(info.Name)
	if store.Size(plug.StoredName(name, sealed)) == 0 {
		return nil, nil, false
	}
	var (
		sc     *domain.Sidecar
		closer io.Closer
	)
	if ro, ok := store.(shard.RangeOpener); ok && !sealed {
		// Plaintext store with random access: leave the payload on the
		// store and read ranges on demand.
		ra, size, oerr := ro.OpenRange(name)
		if oerr != nil {
			err = oerr
		} else {
			closer = ra
			sc, err = domain.OpenSidecar(ra, size)
		}
	} else {
		// Sealed domains (the opener decrypts whole objects) and stores
		// without range reads: pull the sidecar into memory once.
		var b []byte
		b, err = readObject(plug.Opener(store, key), name)
		if err == nil {
			closer = io.NopCloser(nil)
			sc, err = domain.OpenSidecar(bytes.NewReader(b), int64(len(b)))
		}
	}
	if err == nil && sc.Kind() != codec.Kind() {
		err = fmt.Errorf("sidecar kind %q, codec serves %q", sc.Kind(), codec.Kind())
	}
	if err == nil && sc.Count() != info.Records {
		err = fmt.Errorf("sidecar holds %d records, manifest says %d", sc.Count(), info.Records)
	}
	if err != nil {
		if closer != nil {
			closer.Close()
		}
		s.metrics.frameStoreErrors.Inc()
		s.logger.Warn("frame sidecar unusable; falling back to encode",
			"job", job.id, "shard", info.Name, "error", err.Error())
		return nil, nil, false
	}
	return sc, closer, true
}

func readObject(open shard.Opener, name string) ([]byte, error) {
	rc, err := open.Open(name)
	if err != nil {
		return nil, err
	}
	b, err := io.ReadAll(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	return b, err
}

// frameSourceFor resolves one shard of a frame-wire stream to its
// cheapest servable form (see the package comment's decision tree).
// Sources backed by open store handles are appended to closers; the
// stream closes them when it ends.
func (s *Server) frameSourceFor(ctx context.Context, job *Job, dom string, m *shard.Manifest, info shard.Info, open shard.Opener, codec domain.Codec, closers *[]io.Closer) (frameSource, error) {
	if s.frameCacheOn {
		return s.frameShard(ctx, job, dom, m, info, open, codec)
	}
	if !s.opts.DisableFrameStore {
		if sc, closer, ok := s.openFrameSidecar(job, info, codec); ok {
			if err := sc.VerifyPayload(); err != nil {
				closer.Close()
				s.metrics.frameStoreErrors.Inc()
				s.logger.Warn("frame sidecar payload corrupt; falling back to encode",
					"job", job.id, "shard", info.Name, "error", err.Error())
			} else {
				*closers = append(*closers, closer)
				s.metrics.frameStoreHits.Inc()
				s.metrics.frameStoreBytes.Add(float64(sc.PayloadLen()))
				return &sidecarStream{sc: sc}, nil
			}
		}
		s.metrics.frameStoreMisses.Inc()
	}
	records, err := s.shardRecords(ctx, job.id, dom, m, info, open, codec)
	if err != nil {
		return nil, err
	}
	payload, offsets, err := domain.EncodeRecordPayloads(codec, records)
	if err != nil {
		return nil, err
	}
	if !s.opts.DisableFrameStore {
		s.backfillSidecar(job, info, codec, payload, offsets)
	}
	return &encodedShard{payload: payload, offsets: offsets}, nil
}

// backfillSidecar lazily materializes the sidecar for a shard that
// lacks one — replayed pre-sidecar jobs (or a shard whose sidecar was
// lost) converge to the disk tier on first frame access. Failure is a
// lost optimization, never a request error; a concurrent duplicate
// backfill loses the store's create race harmlessly (identical bytes).
func (s *Server) backfillSidecar(job *Job, info shard.Info, codec domain.Codec, payload []byte, offsets []int64) {
	store, key, spec := job.frameStoreHandle()
	if store == nil {
		return
	}
	plug, err := domain.Lookup(spec.Domain)
	if err != nil {
		return
	}
	name := domain.SidecarName(info.Name)
	if store.Size(plug.StoredName(name, key != nil)) > 0 {
		return
	}
	b, err := domain.AppendSidecar(nil, codec.Kind(), payload, offsets)
	if err == nil {
		err = writeObject(plug.Sink(store, key), name, b)
	}
	if err != nil {
		// A concurrent request may have backfilled first and won the
		// store's create race; that's success, not an error.
		if store.Size(plug.StoredName(name, key != nil)) > 0 {
			return
		}
		s.metrics.frameStoreErrors.Inc()
		s.logger.Debug("sidecar backfill failed", "job", job.id, "shard", info.Name, "error", err.Error())
		return
	}
	s.metrics.frameStoreBackfills.Inc()
	s.logger.Debug("sidecar backfilled", "job", job.id, "shard", info.Name, "bytes", len(b))
}

func writeObject(sink shard.Sink, name string, b []byte) error {
	wc, err := sink.Create(name)
	if err != nil {
		return err
	}
	if _, err := wc.Write(b); err != nil {
		wc.Close()
		return err
	}
	return wc.Close()
}

// buildJobSidecars writes every shard's sidecar at job completion so
// the first cold frame stream already has the disk tier. Failures are
// logged and error-counted but never fail the job — serving falls
// back to decode+encode (and lazy backfill) for whatever is missing.
func (s *Server) buildJobSidecars(job *Job, store shard.Store, m *shard.Manifest, key []byte) {
	if s.opts.DisableFrameStore || m == nil {
		return
	}
	job.mu.Lock()
	spec := job.spec
	job.mu.Unlock()
	plug, err := domain.Lookup(spec.Domain)
	if err != nil {
		return
	}
	built, err := domain.BuildShardSidecars(plug, store, m, key)
	if err != nil {
		s.metrics.frameStoreErrors.Inc()
		s.logger.Warn("frame sidecar build incomplete", "job", job.id, "built", built, "error", err.Error())
		return
	}
	if built > 0 {
		s.logger.Debug("frame sidecars written", "job", job.id, "shards", built)
	}
}
