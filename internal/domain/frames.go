// Binary frame wire format. NDJSON is the default, debuggable stream;
// clients that ask for Accept: application/x-draid-frame get the same
// batches as length-prefixed binary frames instead — a varint header
// (kind, batch, cursor, record count) followed by the codec's packed
// little-endian tensor payload, so float-heavy domains pay a memcpy
// per value instead of a JSON encode/parse.
//
// Frame layout (all integers are unsigned LEB128 varints unless noted;
// signed values use zigzag varints; floats are little-endian IEEE 754):
//
//	frame  := uvarint(len(body)) body
//	body   := uvarint(len(kind)) kind
//	          uvarint(batch)
//	          uvarint(len(cursor)) cursor
//	          uvarint(count)
//	          payload            // count records, codec-specific
//
// A stream is a concatenation of frames; clean end-of-stream is EOF at
// a frame boundary. A mid-stream failure is reported as one frame of
// kind "error" whose payload is the message (count 0), mirroring the
// NDJSON {"error": ...} line.
//
// Per-kind payloads, per record:
//
//	samples:          uvarint(nfeat) nfeat×f32 varint(label)
//	fusion_windows:   uvarint(nsig) nsig×f32 varint(shot) varint(start)
//	                  varint(label) f32(horizon)
//	materials_graphs: uvarint(nodes) uvarint(feature_dim)
//	                  nodes·feature_dim×f64 uvarint(edges)
//	                  2·edges×uvarint(endpoint) edges×f64(lengths)
//	                  f64(energy) varint(class_id)
//
// Every length decoded off the wire is bounds-checked against the
// bytes actually present before anything is allocated, so a hostile
// frame cannot balloon memory or index out of range.
package domain

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"

	"repro/internal/loader"
)

// Wire format names, the values of the X-Draid-Wire response header and
// the "wires" discovery fields.
const (
	WireNDJSON = "ndjson"
	WireFrame  = "frame"
)

// HTTP surface of the negotiation.
const (
	ContentTypeNDJSON = "application/x-ndjson"
	ContentTypeFrame  = "application/x-draid-frame"
	HeaderWire        = "X-Draid-Wire"
)

// KindError tags the frame that carries a mid-stream failure message.
const KindError = "error"

// Wires lists the wire formats every batch stream can negotiate.
func Wires() []string { return []string{WireNDJSON, WireFrame} }

// Frame hardening bounds: a frame body larger than MaxFrameBytes (or
// header fields beyond these lengths) is rejected before allocation.
const (
	MaxFrameBytes = 1 << 28
	maxKindLen    = 64
	maxCursorLen  = 128
)

// CodecByKind resolves the codec serving a wire kind across all
// registered plugins (several domains may share one kind).
func CodecByKind(kind string) (Codec, bool) {
	mu.RLock()
	defer mu.RUnlock()
	for _, p := range plugins {
		if p.Codec.Kind() == kind {
			return p.Codec, true
		}
	}
	return nil, false
}

// StreamError is a failure the server reported in-band (an "error"
// frame). It is terminal: reconnecting with the same cursor will hit
// the same condition, unlike a transport error.
type StreamError struct{ Msg string }

func (e *StreamError) Error() string { return "draid stream error: " + e.Msg }

// CorruptFrameError wraps a parse failure of a fully received frame.
// It is terminal too — reconnecting replays the same bytes — unlike
// the io.ErrUnexpectedEOF of a cut connection, which a client cures
// by resuming from its cursor.
type CorruptFrameError struct{ Err error }

func (e *CorruptFrameError) Error() string { return e.Err.Error() }
func (e *CorruptFrameError) Unwrap() error { return e.Err }

// framePrefixLen is the buffer space EncodeFrame reserves for the
// frame-length uvarint, so the body never needs a second copy.
const framePrefixLen = binary.MaxVarintLen32

// finishFrame writes buf's body length right-aligned into the
// reserved prefix and returns the finished frame without copying the
// body.
func finishFrame(buf []byte) []byte {
	body := len(buf) - framePrefixLen
	var tmp [framePrefixLen]byte
	n := binary.PutUvarint(tmp[:], uint64(body))
	copy(buf[framePrefixLen-n:framePrefixLen], tmp[:n])
	return buf[framePrefixLen-n:]
}

// EncodeFrame renders one complete batch frame.
func EncodeFrame(c Codec, h BatchHeader, recs []any) ([]byte, error) {
	buf := appendFrameHeader(make([]byte, framePrefixLen, 4096), h, len(recs))
	buf, err := c.AppendFramePayload(buf, recs)
	if err != nil {
		return nil, err
	}
	if len(buf)-framePrefixLen > MaxFrameBytes {
		return nil, fmt.Errorf("domain: frame body %d bytes exceeds %d", len(buf)-framePrefixLen, MaxFrameBytes)
	}
	return finishFrame(buf), nil
}

// FrameEnvelope returns the wire bytes that precede a pre-encoded
// payload of payloadLen bytes carrying count records: the frame length
// prefix followed by the varint header under h. Appending exactly
// payloadLen payload bytes yields the same frame EncodeFrame would
// build for the same header and records — the header/payload split
// that lets a cached payload be re-framed under a fresh batch index
// and cursor without re-packing a single tensor.
func FrameEnvelope(h BatchHeader, count, payloadLen int) ([]byte, error) {
	if payloadLen < 0 {
		return nil, fmt.Errorf("domain: negative payload length %d", payloadLen)
	}
	buf := appendFrameHeader(make([]byte, framePrefixLen, framePrefixLen+16+len(h.Kind)+len(h.Cursor)), h, count)
	body := len(buf) - framePrefixLen + payloadLen
	if body > MaxFrameBytes {
		return nil, fmt.Errorf("domain: frame body %d bytes exceeds %d", body, MaxFrameBytes)
	}
	// finishFrame would stamp the buffered length only; the envelope's
	// length prefix covers header plus the payload the caller streams
	// after it.
	var tmp [framePrefixLen]byte
	n := binary.PutUvarint(tmp[:], uint64(body))
	copy(buf[framePrefixLen-n:framePrefixLen], tmp[:n])
	return buf[framePrefixLen-n:], nil
}

// EncodeRecordPayloads encodes recs into one contiguous frame payload
// with per-record boundary offsets (len(recs)+1 entries; record i
// occupies payload[offsets[i]:offsets[i+1]]). Every codec's batch
// payload is the plain concatenation of its records' single-record
// payloads (pinned by TestFramePayloadConcatenation), so any
// contiguous record range [a,b) of the result is byte-identical to
// AppendFramePayload over those records — the invariant the encoded-
// frame shard cache slices batches out of.
func EncodeRecordPayloads(c Codec, recs []any) (payload []byte, offsets []int64, err error) {
	offsets = make([]int64, len(recs)+1)
	for i, r := range recs {
		payload, err = c.AppendFramePayload(payload, []any{r})
		if err != nil {
			return nil, nil, err
		}
		offsets[i+1] = int64(len(payload))
	}
	return payload, offsets, nil
}

// EncodeErrorFrame renders the in-band failure frame.
func EncodeErrorFrame(msg string) []byte {
	if len(msg) > maxCursorLen*8 {
		msg = msg[:maxCursorLen*8]
	}
	buf := appendFrameHeader(make([]byte, framePrefixLen, framePrefixLen+64+len(msg)), BatchHeader{Kind: KindError}, 0)
	return finishFrame(append(buf, msg...))
}

func appendFrameHeader(buf []byte, h BatchHeader, count int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(h.Kind)))
	buf = append(buf, h.Kind...)
	buf = binary.AppendUvarint(buf, uint64(h.Batch))
	buf = binary.AppendUvarint(buf, uint64(len(h.Cursor)))
	buf = append(buf, h.Cursor...)
	return binary.AppendUvarint(buf, uint64(count))
}

func prefixFrame(body []byte) []byte {
	out := binary.AppendUvarint(make([]byte, 0, len(body)+binary.MaxVarintLen32), uint64(len(body)))
	return append(out, body...)
}

// DecodeFrame parses one frame off the front of b, returning the
// remainder. A truncated buffer yields io.ErrUnexpectedEOF (or io.EOF
// when b is empty — a clean stream end); an "error" frame yields a
// *StreamError.
func DecodeFrame(b []byte) (BatchHeader, []any, []byte, error) {
	if len(b) == 0 {
		return BatchHeader{}, nil, nil, io.EOF
	}
	ln, sz := binary.Uvarint(b)
	if sz == 0 {
		return BatchHeader{}, nil, nil, io.ErrUnexpectedEOF
	}
	if sz < 0 || ln == 0 || ln > MaxFrameBytes {
		return BatchHeader{}, nil, nil, fmt.Errorf("domain: bad frame length %d", ln)
	}
	if uint64(len(b)-sz) < ln {
		return BatchHeader{}, nil, nil, io.ErrUnexpectedEOF
	}
	h, recs, err := decodeFrameBody(b[sz : sz+int(ln)])
	return h, recs, b[sz+int(ln):], err
}

func decodeFrameBody(body []byte) (BatchHeader, []any, error) {
	p := &frameParser{b: body}
	kl := p.uvarint("kind length")
	if p.err == nil && kl > maxKindLen {
		p.fail("kind length %d exceeds %d", kl, maxKindLen)
	}
	kind := string(p.bytes(int(kl), "kind"))
	batch := p.uvarint("batch index")
	if p.err == nil && batch > math.MaxInt32 {
		p.fail("batch index %d out of range", batch)
	}
	cl := p.uvarint("cursor length")
	if p.err == nil && cl > maxCursorLen {
		p.fail("cursor length %d exceeds %d", cl, maxCursorLen)
	}
	cursor := string(p.bytes(int(cl), "cursor"))
	count := p.uvarint("record count")
	if p.err != nil {
		return BatchHeader{}, nil, p.err
	}
	h := BatchHeader{Batch: int(batch), Cursor: cursor, Kind: kind}
	if kind == KindError {
		return h, nil, &StreamError{Msg: string(p.b)}
	}
	codec, ok := CodecByKind(kind)
	if !ok {
		return h, nil, fmt.Errorf("domain: frame with unknown wire kind %q", kind)
	}
	// Every record costs at least one payload byte, so count bounds the
	// []any allocation before the codec parses anything.
	if count == 0 || count > uint64(len(p.b)) {
		return h, nil, fmt.Errorf("domain: frame claims %d records in %d payload bytes", count, len(p.b))
	}
	recs, err := codec.DecodeFramePayload(p.b, int(count))
	if err != nil {
		return h, nil, err
	}
	return h, recs, nil
}

// FrameReader decodes a frame stream incrementally.
type FrameReader struct {
	r *bufio.Reader
	n int64
}

// NewFrameReader wraps r for frame-at-a-time reading.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// BytesRead is the total wire bytes consumed so far.
func (f *FrameReader) BytesRead() int64 { return f.n }

// Next reads one frame. io.EOF means a clean end at a frame boundary;
// io.ErrUnexpectedEOF (and transport read errors) mean the stream was
// cut mid-frame — the caller may resume by cursor; *StreamError
// carries an in-band server error; *CorruptFrameError means a fully
// received frame failed to parse — both of the latter are terminal.
func (f *FrameReader) Next() (BatchHeader, []any, error) {
	ln, err := binary.ReadUvarint(f.r)
	if err != nil {
		return BatchHeader{}, nil, err
	}
	if ln == 0 || ln > MaxFrameBytes {
		return BatchHeader{}, nil, &CorruptFrameError{fmt.Errorf("domain: bad frame length %d", ln)}
	}
	// Grow the body buffer as bytes actually arrive instead of
	// allocating the wire-claimed length up front: a hostile prefix
	// claiming MaxFrameBytes followed by a stall must not cost 256 MiB
	// per connection.
	const chunk = 64 << 10
	body := make([]byte, 0, min(ln, chunk))
	for uint64(len(body)) < ln {
		want := int(min(ln-uint64(len(body)), chunk))
		body = slices.Grow(body, want)[:len(body)+want]
		if _, err := io.ReadFull(f.r, body[len(body)-want:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return BatchHeader{}, nil, err
		}
	}
	f.n += int64(uvarintLen(ln)) + int64(ln)
	h, recs, err := decodeFrameBody(body)
	if err != nil {
		var se *StreamError
		if !errors.As(err, &se) {
			err = &CorruptFrameError{err}
		}
	}
	return h, recs, err
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// frameParser walks a frame payload with a sticky error: every length
// is checked against the bytes remaining before any allocation.
type frameParser struct {
	b   []byte
	err error
}

func (p *frameParser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("domain: frame: "+format, args...)
	}
}

func (p *frameParser) uvarint(what string) uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b)
	if n <= 0 {
		p.fail("bad varint for %s", what)
		return 0
	}
	p.b = p.b[n:]
	return v
}

func (p *frameParser) varint(what string) int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.b)
	if n <= 0 {
		p.fail("bad varint for %s", what)
		return 0
	}
	p.b = p.b[n:]
	return v
}

func (p *frameParser) bytes(n int, what string) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || n > len(p.b) {
		p.fail("%s wants %d bytes, %d remain", what, n, len(p.b))
		return nil
	}
	out := p.b[:n]
	p.b = p.b[n:]
	return out
}

// length reads a uvarint element count and bounds it by the payload
// bytes remaining at elemSize bytes per element.
func (p *frameParser) length(elemSize int, what string) int {
	v := p.uvarint(what)
	if p.err != nil {
		return 0
	}
	if v > uint64(len(p.b))/uint64(elemSize) {
		p.fail("%s %d exceeds %d remaining payload bytes", what, v, len(p.b))
		return 0
	}
	return int(v)
}

func (p *frameParser) f32s(n int, what string) []float32 {
	raw := p.bytes(4*n, what)
	if p.err != nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

func (p *frameParser) f64s(n int, what string) []float64 {
	raw := p.bytes(8*n, what)
	if p.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

func (p *frameParser) f32(what string) float32 {
	v := p.f32s(1, what)
	if p.err != nil {
		return 0
	}
	return v[0]
}

func (p *frameParser) f64(what string) float64 {
	v := p.f64s(1, what)
	if p.err != nil {
		return 0
	}
	return v[0]
}

// finish requires the payload to be fully consumed.
func (p *frameParser) finish() error {
	if p.err != nil {
		return p.err
	}
	if len(p.b) != 0 {
		return fmt.Errorf("domain: frame: %d trailing payload bytes", len(p.b))
	}
	return nil
}

// recsCap bounds the initial []any allocation: hostile counts never
// pre-allocate more than this, growth beyond it is append-driven.
const recsCap = 1024

func frameRecs(count int) []any {
	if count > recsCap {
		count = recsCap
	}
	return make([]any, 0, count)
}

// ---- samples ----

func (sampleCodec) AppendFramePayload(buf []byte, recs []any) ([]byte, error) {
	for _, r := range recs {
		s, ok := r.(*loader.Sample)
		if !ok {
			return nil, fmt.Errorf("domain: samples codec got %T", r)
		}
		buf = binary.AppendUvarint(buf, uint64(len(s.Features)))
		for _, v := range s.Features {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		buf = binary.AppendVarint(buf, int64(s.Label))
	}
	return buf, nil
}

func (sampleCodec) DecodeFramePayload(payload []byte, count int) ([]any, error) {
	p := &frameParser{b: payload}
	recs := frameRecs(count)
	for i := 0; i < count; i++ {
		n := p.length(4, "feature count")
		feats := p.f32s(n, "features")
		label := p.varint("label")
		if p.err == nil && (label < math.MinInt32 || label > math.MaxInt32) {
			p.fail("label %d out of int32 range", label)
		}
		if p.err != nil {
			return nil, p.err
		}
		recs = append(recs, &loader.Sample{Features: feats, Label: int32(label)})
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ---- fusion windows ----

func (fusionCodec) AppendFramePayload(buf []byte, recs []any) ([]byte, error) {
	for _, r := range recs {
		w, ok := r.(*FusionWindow)
		if !ok {
			return nil, fmt.Errorf("domain: fusion codec got %T", r)
		}
		buf = binary.AppendUvarint(buf, uint64(len(w.Signal)))
		for _, v := range w.Signal {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		buf = binary.AppendVarint(buf, w.Shot)
		buf = binary.AppendVarint(buf, w.Start)
		buf = binary.AppendVarint(buf, w.Label)
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(w.Horizon))
	}
	return buf, nil
}

func (fusionCodec) DecodeFramePayload(payload []byte, count int) ([]any, error) {
	p := &frameParser{b: payload}
	recs := frameRecs(count)
	for i := 0; i < count; i++ {
		n := p.length(4, "signal length")
		if p.err == nil && n == 0 {
			p.fail("fusion window without signal floats")
		}
		w := &FusionWindow{Signal: p.f32s(n, "signal")}
		w.Shot = p.varint("shot")
		w.Start = p.varint("start")
		w.Label = p.varint("label")
		w.Horizon = p.f32("horizon")
		if p.err != nil {
			return nil, p.err
		}
		recs = append(recs, w)
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ---- materials graphs ----

func (materialsCodec) AppendFramePayload(buf []byte, recs []any) ([]byte, error) {
	for _, r := range recs {
		g, ok := r.(*WireGraph)
		if !ok {
			return nil, fmt.Errorf("domain: materials codec got %T", r)
		}
		// Decode validated these invariants; re-check cheaply so a
		// hand-built record cannot emit a frame its own parser rejects.
		if g.Nodes < 1 || g.FeatureDim < 1 || len(g.NodeFeatures) != g.Nodes*g.FeatureDim ||
			len(g.Edges) != 2*len(g.EdgeLengths) {
			return nil, fmt.Errorf("domain: inconsistent graph record (%d nodes × %d dims, %d features, %d edge ints)",
				g.Nodes, g.FeatureDim, len(g.NodeFeatures), len(g.Edges))
		}
		buf = binary.AppendUvarint(buf, uint64(g.Nodes))
		buf = binary.AppendUvarint(buf, uint64(g.FeatureDim))
		for _, v := range g.NodeFeatures {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		buf = binary.AppendUvarint(buf, uint64(len(g.EdgeLengths)))
		for _, e := range g.Edges {
			if e < 0 || e >= int64(g.Nodes) {
				return nil, fmt.Errorf("domain: edge endpoint %d outside %d nodes", e, g.Nodes)
			}
			buf = binary.AppendUvarint(buf, uint64(e))
		}
		for _, v := range g.EdgeLengths {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(g.Energy))
		buf = binary.AppendVarint(buf, g.ClassID)
	}
	return buf, nil
}

func (materialsCodec) DecodeFramePayload(payload []byte, count int) ([]any, error) {
	p := &frameParser{b: payload}
	recs := frameRecs(count)
	for i := 0; i < count; i++ {
		nodes := p.uvarint("node count")
		dim := p.uvarint("feature dim")
		if p.err == nil && (nodes < 1 || dim < 1 || nodes > MaxFrameBytes || dim > MaxFrameBytes) {
			p.fail("graph shape [%d,%d] out of range", nodes, dim)
		}
		if p.err != nil {
			return nil, p.err
		}
		// nodes and dim are each <= 2^28 here, so the product cannot
		// overflow uint64; the byte bound then caps the allocation.
		if nodes*dim > uint64(len(p.b))/8 {
			p.fail("node_features [%d,%d] exceeds %d remaining payload bytes", nodes, dim, len(p.b))
			return nil, p.err
		}
		g := &WireGraph{
			Nodes:        int(nodes),
			FeatureDim:   int(dim),
			NodeFeatures: p.f64s(int(nodes*dim), "node_features"),
		}
		ne := p.length(2, "edge count") // each edge is two >=1-byte varints
		g.Edges = make([]int64, 0, min(2*ne, recsCap))
		for j := 0; j < 2*ne; j++ {
			e := p.uvarint("edge endpoint")
			if p.err == nil && e >= nodes {
				p.fail("edge endpoint %d outside %d nodes", e, nodes)
			}
			if p.err != nil {
				return nil, p.err
			}
			g.Edges = append(g.Edges, int64(e))
		}
		g.EdgeLengths = p.f64s(ne, "edge_lengths")
		g.Energy = p.f64("energy")
		g.ClassID = p.varint("class_id")
		if p.err != nil {
			return nil, p.err
		}
		recs = append(recs, g)
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return recs, nil
}
