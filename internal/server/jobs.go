// Job model for the draid service: a submission names a registry
// template and synthetic-input scale; the server runs the archetype
// pipeline asynchronously on a bounded worker pool and retains the
// outputs (shard sink, manifest, readiness trajectory, provenance) for
// the serving endpoints.
package server

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/anonymize"
	"repro/internal/bio"
	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/fusion"
	"repro/internal/materials"
	"repro/internal/pipeline"
	"repro/internal/provenance"
	"repro/internal/registry"
	"repro/internal/shard"
)

// JobState is the lifecycle position of a submitted job.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobSpec is the submission body: which registry template to run and
// how large a synthetic input to prepare. Zero-valued knobs pick
// per-domain defaults sized for interactive turnaround.
type JobSpec struct {
	Domain core.Domain `json:"domain"`
	Name   string      `json:"name,omitempty"`
	Seed   int64       `json:"seed,omitempty"`
	// Climate: source grid before regridding.
	Months int `json:"months,omitempty"`
	Lat    int `json:"lat,omitempty"`
	Lon    int `json:"lon,omitempty"`
	// Fusion.
	Shots int `json:"shots,omitempty"`
	// Bio/health.
	Subjects int `json:"subjects,omitempty"`
	SeqLen   int `json:"seq_len,omitempty"`
	// Materials.
	Structures int `json:"structures,omitempty"`
}

// Scale-knob ceilings: submissions are unauthenticated, so a single
// oversized spec must not be able to allocate the server to death.
const (
	maxMonths     = 1200
	maxGridDim    = 512
	maxShots      = 256
	maxSubjects   = 5000
	maxSeqLen     = 100000
	maxStructures = 5000
)

// Validate rejects specs whose synthetic input would exceed the
// per-job resource ceilings.
func (s JobSpec) Validate() error {
	check := func(name string, v, max int) error {
		if v > max {
			return fmt.Errorf("server: %s=%d exceeds limit %d", name, v, max)
		}
		if v < 0 {
			return fmt.Errorf("server: %s=%d must not be negative", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name   string
		v, max int
	}{
		{"months", s.Months, maxMonths},
		{"lat", s.Lat, maxGridDim},
		{"lon", s.Lon, maxGridDim},
		{"shots", s.Shots, maxShots},
		{"subjects", s.Subjects, maxSubjects},
		{"seq_len", s.SeqLen, maxSeqLen},
		{"structures", s.Structures, maxStructures},
	} {
		if err := check(c.name, c.v, c.max); err != nil {
			return err
		}
	}
	return nil
}

// TrajectoryPoint is one stage of the job's readiness trajectory — the
// Table 2 walk exposed over the API.
type TrajectoryPoint struct {
	Stage     string   `json:"stage"`
	Kind      string   `json:"kind"`
	Level     int      `json:"level"`
	LevelName string   `json:"level_name"`
	Gaps      []string `json:"gaps,omitempty"`
}

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID         string            `json:"id"`
	Spec       JobSpec           `json:"spec"`
	State      JobState          `json:"state"`
	Error      string            `json:"error,omitempty"`
	Submitted  time.Time         `json:"submitted"`
	Started    *time.Time        `json:"started,omitempty"`
	Finished   *time.Time        `json:"finished,omitempty"`
	Records    int64             `json:"records"`
	Shards     int               `json:"shards"`
	Servable   bool              `json:"servable"`
	Trajectory []TrajectoryPoint `json:"trajectory,omitempty"`
	// Node is the fleet member holding the job (empty single-node).
	Node string `json:"node,omitempty"`
}

// Job is one pipeline run owned by the server.
type Job struct {
	mu         sync.Mutex
	id         string
	spec       JobSpec
	state      JobState
	err        string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	trajectory []TrajectoryPoint
	records    int64

	// Populated on success.
	manifest *shard.Manifest
	store    shard.Store  // raw shard storage (owned; destroyed on eviction)
	open     shard.Opener // read path (decrypting wrapper for bio jobs)
	servable bool         // shards hold loader.Sample records
	tracker  *provenance.Tracker
	bioKey   []byte // per-job shard key (bio only; sealed into the job log)

	// lastAccess drives TTL/LRU eviction: completion and every batch
	// stream refresh it.
	lastAccess time.Time
}

// touch refreshes the eviction clock.
func (j *Job) touch() {
	j.mu.Lock()
	j.lastAccess = time.Now()
	j.mu.Unlock()
}

// Status snapshots the job for JSON rendering.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Spec: j.spec, State: j.state, Error: j.err,
		Submitted: j.submitted, Records: j.records, Servable: j.servable,
		Trajectory: append([]TrajectoryPoint(nil), j.trajectory...),
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.manifest != nil {
		st.Shards = len(j.manifest.Shards)
	}
	return st
}

// serveHandle returns what the batch endpoint needs, or an error string
// describing why the job cannot serve samples yet.
func (j *Job) serveHandle() (*shard.Manifest, shard.Opener, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == JobQueued || j.state == JobRunning:
		return nil, nil, fmt.Errorf("job %s is %s; samples are served once it is done", j.id, j.state)
	case j.state == JobFailed:
		return nil, nil, fmt.Errorf("job %s failed: %s", j.id, j.err)
	case !j.servable || j.manifest == nil:
		return nil, nil, fmt.Errorf("job %s (%s) does not produce loader-sample shards", j.id, j.spec.Domain)
	}
	return j.manifest, j.open, nil
}

// decryptOpener presents a bio job's sealed shard set as plaintext: the
// sink stores "<name>.enc" AES-GCM blobs; readers see the manifest's
// plaintext names and checksums.
type decryptOpener struct {
	sink shard.Opener
	key  []byte
}

// Open implements shard.Opener over sealed shards.
func (o decryptOpener) Open(name string) (io.ReadCloser, error) {
	rc, err := o.sink.Open(name + ".enc")
	if err != nil {
		return nil, err
	}
	sealed, err := io.ReadAll(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	plain, err := anonymize.DecryptShard(o.key, name, sealed)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(plain)), nil
}

// jobResult carries a finished pipeline run back onto the Job.
type jobResult struct {
	trajectory []TrajectoryPoint
	records    int64
	manifest   *shard.Manifest
	open       shard.Opener
	servable   bool
	tracker    *provenance.Tracker
	pipe       *pipeline.Pipeline
	bioKey     []byte
}

// runSpec synthesizes the domain input, instantiates the registry
// template over the job's shard store (in-memory, durable FSSink, or
// parfs, chosen by the server), and runs it — the body of one
// worker-pool slot.
func runSpec(spec JobSpec, sink shard.Store) (*jobResult, error) {
	res := &jobResult{open: sink}

	var (
		p   *pipeline.Pipeline
		ds  *pipeline.Dataset
		err error
	)
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}

	switch spec.Domain {
	case core.Climate:
		months, lat, lon := orDefault(spec.Months, 24), orDefault(spec.Lat, 16), orDefault(spec.Lon, 32)
		field, serr := climate.Synthesize(climate.SynthConfig{
			Months: months, Lat: lat, Lon: lon, MissingRate: 0.01, Seed: seed})
		if serr != nil {
			return nil, serr
		}
		raw, serr := field.ToNetCDF()
		if serr != nil {
			return nil, serr
		}
		p, err = registry.New(spec.Domain, sink, climate.Config{
			TargetLat: lat / 2, TargetLon: lon / 2, Method: climate.Bilinear,
			Workers: 2, ShardTargetBytes: 8 << 10, Seed: seed})
		if err != nil {
			return nil, err
		}
		ds = climate.NewDataset(spec.Name, raw)
		res.servable = true

	case core.Fusion:
		st, serr := fusion.SynthesizeCampaign(fusion.SynthConfig{
			Shots: orDefault(spec.Shots, 8), DisruptionRate: 0.35,
			FlattopSeconds: 1, DropoutRate: 0.01, Seed: seed})
		if serr != nil {
			return nil, serr
		}
		cfg := fusion.DefaultConfig()
		cfg.Seed = seed
		p, err = registry.New(spec.Domain, sink, cfg)
		if err != nil {
			return nil, err
		}
		ds = fusion.NewDataset(spec.Name, st)

	case core.BioHealth:
		// The bio template tiles at the default length; shorter synthetic
		// sequences would fail every job, so floor SeqLen there.
		seqLen := orDefault(spec.SeqLen, 256)
		if min := bio.DefaultConfig(nil, nil).TileLen; seqLen < min {
			seqLen = min
		}
		cohort, serr := bio.Synthesize(bio.SynthConfig{
			Subjects: orDefault(spec.Subjects, 24), SeqLen: seqLen, Seed: seed})
		if serr != nil {
			return nil, serr
		}
		key := make([]byte, 32)
		if _, kerr := rand.Read(key); kerr != nil {
			return nil, kerr
		}
		secret := make([]byte, 32)
		if _, kerr := rand.Read(secret); kerr != nil {
			return nil, kerr
		}
		p, err = registry.New(spec.Domain, sink, registry.BioSecrets{
			EncryptionKey: key, PseudonymSecret: secret})
		if err != nil {
			return nil, err
		}
		ds = bio.NewDataset(spec.Name, cohort.ToFASTA(), cohort.Clinical)
		res.open = decryptOpener{sink: sink, key: key}
		res.bioKey = key
		res.servable = true

	case core.Materials:
		structs, serr := materials.Synthesize(materials.SynthConfig{
			Structures: orDefault(spec.Structures, 24), MinAtoms: 4, MaxAtoms: 10,
			ImbalanceRatio: 3, Seed: seed})
		if serr != nil {
			return nil, serr
		}
		poscars := make([]string, len(structs))
		for i, s := range structs {
			poscars[i] = s.ToPOSCAR()
		}
		p, err = registry.New(spec.Domain, sink, nil)
		if err != nil {
			return nil, err
		}
		ds = materials.NewDataset(spec.Name, poscars)

	default:
		return nil, fmt.Errorf("server: unknown domain %q", spec.Domain)
	}

	snaps, err := p.Run(ds)
	res.trajectory = toTrajectory(snaps)
	res.tracker = p.Tracker
	res.pipe = p
	if err != nil {
		return res, err
	}
	res.records = ds.Records

	switch prod := ds.Payload.(type) {
	case *climate.Product:
		res.manifest = prod.Manifest
	case *fusion.Product:
		res.manifest = prod.Manifest
	case *bio.Product:
		res.manifest = prod.Manifest
	}
	return res, nil
}

func toTrajectory(snaps []pipeline.Snapshot) []TrajectoryPoint {
	out := make([]TrajectoryPoint, len(snaps))
	for i, s := range snaps {
		out[i] = TrajectoryPoint{
			Stage:     s.StageName,
			Kind:      s.StageKind.String(),
			Level:     int(s.Assessment.Level),
			LevelName: s.Assessment.Level.String(),
			Gaps:      append([]string(nil), s.Assessment.Gaps...),
		}
	}
	return out
}

func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}
