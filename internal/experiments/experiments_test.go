package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRunFig1(t *testing.T) {
	res, err := RunFig1(24, 12, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := []string{"clean", "normalize", "augment", "label", "feature-engineer", "split", "shard-export"}
	if len(res.Steps) != len(wantSteps) {
		t.Fatalf("steps=%d", len(res.Steps))
	}
	for i, s := range res.Steps {
		if s.Name != wantSteps[i] {
			t.Fatalf("step %d = %s, want %s", i, s.Name, wantSteps[i])
		}
	}
	// Augmentation must have grown the sample pool.
	if res.SamplesOut <= res.SamplesIn {
		t.Fatalf("in=%d out=%d", res.SamplesIn, res.SamplesOut)
	}
	if res.ShardCount == 0 {
		t.Fatal("no shards")
	}
	if res.FinalLevel != core.AIReady {
		t.Fatalf("level=%v", res.FinalLevel)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "shard-export") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRunTable1AllDomains(t *testing.T) {
	rows, err := RunTable1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	seen := map[core.Domain]bool{}
	for _, r := range rows {
		seen[r.Domain] = true
		if r.FinalLevel != core.AIReady {
			t.Fatalf("%s final=%v", r.Domain, r.FinalLevel)
		}
		if r.Records == 0 {
			t.Fatalf("%s no records", r.Domain)
		}
		// E7: every archetype's kind walk is a monotone subsequence of
		// the canonical five stages and includes Ingest and Shard.
		prev := core.Ingest
		for i, k := range r.StageKinds {
			if i > 0 && k <= prev {
				t.Fatalf("%s kinds=%v not strictly advancing", r.Domain, r.StageKinds)
			}
			prev = k
		}
		if r.StageKinds[0] != core.Ingest || r.StageKinds[len(r.StageKinds)-1] != core.Shard {
			t.Fatalf("%s kinds=%v", r.Domain, r.StageKinds)
		}
	}
	for _, d := range core.Domains() {
		if !seen[d] {
			t.Fatalf("missing domain %s", d)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "climate") || !strings.Contains(out, "imbalance") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRunTable2(t *testing.T) {
	res, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if res.PopulatedCells != 15 || res.GreyCells != 10 {
		t.Fatalf("cells: %d populated, %d grey", res.PopulatedCells, res.GreyCells)
	}
	if !res.Monotone {
		t.Fatal("trajectory not monotone")
	}
	if len(res.Rendered) != 5 {
		t.Fatalf("renderings=%d", len(res.Rendered))
	}
	if !strings.Contains(res.Rendered[4], "Shard") {
		t.Fatalf("final matrix:\n%s", res.Rendered[4])
	}
}

func TestRunScaling(t *testing.T) {
	points, err := RunScaling(4, []int{1, 2, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points=%d", len(points))
	}
	if points[0].Speedup != 1 {
		t.Fatalf("base speedup=%v", points[0].Speedup)
	}
	// The paper's claim: parallel I/O beats sequential. The absolute
	// 4-worker speedup is load-sensitive (wall-clock sleeps under a busy
	// -race suite), so gate on the shape, not a magic ratio: the curve
	// must be monotone non-decreasing within a scheduling-noise
	// tolerance, and 4 workers must not lose to 1.
	const tolerance = 0.85
	for i := 1; i < len(points); i++ {
		if points[i].Speedup < points[i-1].Speedup*tolerance {
			t.Fatalf("speedup not monotone: %d workers %.2fx after %d workers %.2fx (curve: %+v)",
				points[i].Workers, points[i].Speedup, points[i-1].Workers, points[i-1].Speedup, points)
		}
	}
	if points[2].Speedup < tolerance {
		t.Fatalf("4-worker speedup=%v, parallel I/O lost to sequential (curve: %+v)", points[2].Speedup, points)
	}
	out := RenderScaling(points, 4, 8)
	if !strings.Contains(out, "workers") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRunCuration(t *testing.T) {
	res, err := RunCuration(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: curation dominates the manual workflow (>=70%
	// there; we accept >=60% to keep the test robust across machines).
	if res.ManualCurationShare < 0.6 {
		t.Fatalf("curation share=%v", res.ManualCurationShare)
	}
	if res.AutoSpeedup <= 1 {
		t.Fatalf("automation speedup=%v", res.AutoSpeedup)
	}
	out := res.Render()
	if !strings.Contains(out, "70%") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRunFeedback(t *testing.T) {
	res, err := RunFeedback(400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds")
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Coverage < 0.9 {
		t.Fatalf("coverage=%v", last.Coverage)
	}
	// Coverage non-decreasing (C3).
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].Coverage < res.Rounds[i-1].Coverage {
			t.Fatalf("coverage regressed: %+v", res.Rounds)
		}
	}
	if res.Accuracy < 0.9 {
		t.Fatalf("accuracy=%v", res.Accuracy)
	}
	if !strings.Contains(res.Render(), "coverage") {
		t.Fatal("render missing coverage")
	}
}
