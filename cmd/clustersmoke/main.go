// Command clustersmoke is the fleet end-to-end check CI runs on every
// push: it launches three real draid processes sharing one data dir,
// submits a job through every node, verifies the fleet agrees on
// consistent-hash ownership and that proxied streams match owner-direct
// streams byte for byte, then SIGKILLs one job's owner mid-stream and
// requires the same cursor to resume against a survivor until every
// job's stream completes.
//
// Usage:
//
//	go build -o /tmp/draid ./cmd/draid
//	go run ./cmd/clustersmoke -draid /tmp/draid
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

type node struct {
	id   string
	url  string
	cmd  *exec.Cmd
	dead bool
}

func main() {
	draid := flag.String("draid", "", "path to a built draid binary (required)")
	basePort := flag.Int("base-port", 18081, "first of three consecutive listen ports")
	keep := flag.Bool("keep", false, "keep the data dir for inspection")
	flag.Parse()
	log.SetFlags(0)
	if *draid == "" {
		log.Fatal("clustersmoke: -draid is required")
	}

	dataDir, err := os.MkdirTemp("", "clustersmoke-")
	if err != nil {
		log.Fatal(err)
	}
	if !*keep {
		defer os.RemoveAll(dataDir)
	}
	log.Printf("clustersmoke: shared data dir %s", dataDir)

	nodes := make([]*node, 3)
	var peers []string
	for i := range nodes {
		id := fmt.Sprintf("n%d", i+1)
		url := fmt.Sprintf("http://127.0.0.1:%d", *basePort+i)
		nodes[i] = &node{id: id, url: url}
		peers = append(peers, id+"="+url)
	}
	peerFlag := strings.Join(peers, ",")
	for i, n := range nodes {
		n.cmd = exec.Command(*draid,
			"-addr", fmt.Sprintf("127.0.0.1:%d", *basePort+i),
			"-data-dir", dataDir,
			"-node-id", n.id,
			"-peers", peerFlag,
			"-probe-interval", "200ms",
			"-workers", "2",
		)
		n.cmd.Stdout = os.Stderr
		n.cmd.Stderr = os.Stderr
		if err := n.cmd.Start(); err != nil {
			log.Fatalf("clustersmoke: start %s: %v", n.id, err)
		}
	}
	defer func() {
		for _, n := range nodes {
			if !n.dead && n.cmd.Process != nil {
				_ = n.cmd.Process.Kill()
				_, _ = n.cmd.Process.Wait()
			}
		}
	}()

	for _, n := range nodes {
		waitHealthy(n)
	}
	log.Printf("clustersmoke: fleet of %d healthy", len(nodes))

	// One job submitted through each member; completion polled through
	// the same member (routing hides where it actually runs).
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		id, err := server.SubmitAndWait(n.url, server.JobSpec{
			Domain: "climate", Name: fmt.Sprintf("smoke-%d", i), Seed: int64(i + 1),
		}, 120*time.Second)
		if err != nil {
			log.Fatalf("clustersmoke: job via %s: %v", n.id, err)
		}
		ids[i] = id
		log.Printf("clustersmoke: %s done (submitted via %s)", id, n.id)
	}

	// Fleet-wide ownership agreement, and owner-direct == proxied bytes.
	fullStreams := make(map[string][]byte, len(ids))
	owners := make(map[string]*node, len(ids))
	for _, id := range ids {
		owner := ""
		for _, n := range nodes {
			got := ownerOf(n.url, id)
			if owner == "" {
				owner = got
			} else if got != owner {
				log.Fatalf("clustersmoke: fleet disagrees on owner of %s: %s vs %s", id, owner, got)
			}
		}
		for _, n := range nodes {
			if n.id == owner {
				owners[id] = n
			}
		}
		direct := streamBytes(owners[id].url, id, "")
		for _, n := range nodes {
			if n.id == owner {
				continue
			}
			proxied := streamBytes(n.url, id, "")
			if string(proxied) != string(direct) {
				log.Fatalf("clustersmoke: stream of %s via %s differs from owner-direct", id, n.id)
			}
		}
		fullStreams[id] = direct
		log.Printf("clustersmoke: %s owned by %s; proxied streams byte-identical", id, owner)
	}

	// Kill the owner of the first job mid-stream, then resume the same
	// cursor against a survivor.
	victim := owners[ids[0]]
	var survivor *node
	for _, n := range nodes {
		if n.id != victim.id {
			survivor = n
			break
		}
	}
	_, _, _, cursor, err := server.StreamBatchesFrom(
		survivor.url+"/v1/jobs/"+ids[0]+"/batches?batch_size=4&max_batches=2", "")
	if err != nil {
		log.Fatalf("clustersmoke: partial stream: %v", err)
	}
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		log.Fatalf("clustersmoke: kill %s: %v", victim.id, err)
	}
	_, _ = victim.cmd.Process.Wait()
	victim.dead = true
	log.Printf("clustersmoke: SIGKILLed %s (owner of %s); resuming cursor %s via %s",
		victim.id, ids[0], cursor, survivor.id)

	resumed := streamBytes(survivor.url, ids[0], cursor)
	checkResume(fullStreams[ids[0]], resumed, 2, ids[0])
	log.Printf("clustersmoke: cursor resume after owner death is byte-exact")

	// Every job — including any others the victim owned — must still
	// stream completely via the survivors.
	for _, id := range ids {
		for _, n := range nodes {
			if n.dead {
				continue
			}
			got := streamBytes(n.url, id, "")
			if string(got) != string(fullStreams[id]) {
				log.Fatalf("clustersmoke: post-kill stream of %s via %s differs (%d vs %d bytes)",
					id, n.id, len(got), len(fullStreams[id]))
			}
		}
	}
	log.Printf("clustersmoke: all %d jobs fully streamable via survivors — PASS", len(ids))
}

func waitHealthy(n *node) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(n.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("clustersmoke: %s not healthy after 15s", n.id)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func ownerOf(baseURL, jobID string) string {
	resp, err := http.Get(baseURL + "/v1/cluster?job=" + jobID)
	if err != nil {
		log.Fatalf("clustersmoke: cluster info: %v", err)
	}
	defer resp.Body.Close()
	var info struct {
		Job struct {
			Owner string `json:"owner"`
		} `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		log.Fatalf("clustersmoke: decode cluster info: %v", err)
	}
	if info.Job.Owner == "" {
		log.Fatalf("clustersmoke: no owner reported for %s", jobID)
	}
	return info.Job.Owner
}

func streamBytes(baseURL, jobID, cursor string) []byte {
	url := baseURL + "/v1/jobs/" + jobID + "/batches?batch_size=4"
	if cursor != "" {
		url += "&cursor=" + cursor
	}
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("clustersmoke: stream %s: %v", jobID, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("clustersmoke: stream %s: %v", jobID, err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("clustersmoke: stream %s: status %d: %s", jobID, resp.StatusCode, body)
	}
	if strings.Contains(string(body), `"error"`) {
		log.Fatalf("clustersmoke: stream %s carried an error line: %s", jobID, body)
	}
	return body
}

// checkResume verifies prefix batches of the original stream plus the
// renumbered resumed stream reproduce the original byte-for-byte.
func checkResume(full, resumed []byte, prefixBatches int, jobID string) {
	fullLines := strings.Split(strings.TrimSuffix(string(full), "\n"), "\n")
	if len(fullLines) <= prefixBatches {
		log.Fatalf("clustersmoke: %s too small to test resume (%d batches)", jobID, len(fullLines))
	}
	got := append([]string{}, fullLines[:prefixBatches]...)
	idx := prefixBatches
	for _, line := range strings.Split(strings.TrimSuffix(string(resumed), "\n"), "\n") {
		if line == "" {
			continue
		}
		var wire server.BatchWire
		if err := json.Unmarshal([]byte(line), &wire); err != nil {
			log.Fatalf("clustersmoke: resumed line unparsable: %v", err)
		}
		wire.Batch = idx
		idx++
		b, _ := json.Marshal(&wire)
		got = append(got, string(b))
	}
	if len(got) != len(fullLines) {
		log.Fatalf("clustersmoke: resume of %s yields %d batches, want %d", jobID, len(got), len(fullLines))
	}
	for i := range got {
		if got[i] != fullLines[i] {
			log.Fatalf("clustersmoke: batch %d of %s differs after failover", i, jobID)
		}
	}
}
