package registry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/shard"
)

func TestAllDomainsRegistered(t *testing.T) {
	domains := Domains()
	if len(domains) != 4 {
		t.Fatalf("domains=%v", domains)
	}
	for _, d := range core.Domains() {
		tpl, err := Lookup(d)
		if err != nil {
			t.Fatal(err)
		}
		if tpl.Description == "" {
			t.Fatalf("%s template lacks description", d)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup(core.Domain("astro")); err == nil {
		t.Fatal("want not-found error")
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(Template{}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestNewClimateDefault(t *testing.T) {
	p, err := New(core.Climate, shard.NewMemSink(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "climate-archetype" {
		t.Fatalf("name=%q", p.Name())
	}
}

func TestNewClimateCustomConfig(t *testing.T) {
	cfg := climate.DefaultConfig()
	cfg.TargetLat, cfg.TargetLon = 6, 12
	p, err := New(core.Climate, shard.NewMemSink(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run it end-to-end to prove the custom config took effect.
	field, err := climate.Synthesize(climate.SynthConfig{Months: 12, Lat: 12, Lon: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := field.ToNetCDF()
	if err != nil {
		t.Fatal(err)
	}
	ds := climate.NewDataset("reg", raw)
	if _, err := p.Run(ds); err != nil {
		t.Fatal(err)
	}
	prod := ds.Payload.(*climate.Product)
	if prod.Field.Data.Dim(1) != 6 || prod.Field.Data.Dim(2) != 12 {
		t.Fatalf("custom grid ignored: %v", prod.Field.Data.Shape())
	}
}

func TestNewFusionAndMaterialsDefaults(t *testing.T) {
	for _, d := range []core.Domain{core.Fusion, core.Materials} {
		p, err := New(d, shard.NewMemSink(), nil)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if !strings.Contains(p.Name(), "archetype") {
			t.Fatalf("%s name=%q", d, p.Name())
		}
	}
}

func TestNewBioRequiresSecrets(t *testing.T) {
	if _, err := New(core.BioHealth, shard.NewMemSink(), nil); err == nil {
		t.Fatal("bio without secrets must fail")
	}
	p, err := New(core.BioHealth, shard.NewMemSink(), BioSecrets{
		EncryptionKey:   bytes.Repeat([]byte{1}, 32),
		PseudonymSecret: []byte("registry-test-secret-key"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "bio-archetype" {
		t.Fatalf("name=%q", p.Name())
	}
}

// TestAllTemplatesWalkAbstractStages re-verifies E7 through the registry
// entry point: every template's pipeline walks ingest→…→shard.
func TestAllTemplatesWalkAbstractStages(t *testing.T) {
	build := func(d core.Domain) *pipeline.Pipeline {
		var opts any
		if d == core.BioHealth {
			opts = BioSecrets{
				EncryptionKey:   bytes.Repeat([]byte{1}, 32),
				PseudonymSecret: []byte("registry-test-secret-key"),
			}
		}
		p, err := New(d, shard.NewMemSink(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, d := range core.Domains() {
		p := build(d)
		kinds := p.StageKinds()
		if kinds[0] != core.Ingest || kinds[len(kinds)-1] != core.Shard {
			t.Fatalf("%s kinds=%v", d, kinds)
		}
	}
}

// TestTemplatesCatalog checks the catalog view the serving tier exposes.
func TestTemplatesCatalog(t *testing.T) {
	tpls := Templates()
	if len(tpls) != len(Domains()) {
		t.Fatalf("templates=%d domains=%d", len(tpls), len(Domains()))
	}
	for i := 1; i < len(tpls); i++ {
		if tpls[i-1].Domain >= tpls[i].Domain {
			t.Fatalf("catalog not sorted: %v before %v", tpls[i-1].Domain, tpls[i].Domain)
		}
	}
	for _, tpl := range tpls {
		if tpl.Description == "" || tpl.Build == nil {
			t.Fatalf("incomplete template %+v", tpl.Domain)
		}
	}
}

// TestConcurrentRegistryAccess hammers the registry the way draid does
// under parallel requests: template listing, lookups, and pipeline
// instantiation racing concurrent registrations. Run with -race.
func TestConcurrentRegistryAccess(t *testing.T) {
	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := core.Domain(fmt.Sprintf("scratch-%d", w))
			for r := 0; r < rounds; r++ {
				if err := Register(Template{
					Domain:      scratch,
					Description: "ephemeral test template",
					Build: func(sink shard.Sink, opts any) (*pipeline.Pipeline, error) {
						return New(core.Climate, sink, opts)
					},
				}); err != nil {
					errs <- err
					return
				}
				if _, err := Lookup(scratch); err != nil {
					errs <- err
					return
				}
				if _, err := Lookup(core.Climate); err != nil {
					errs <- err
					return
				}
				if got := len(Templates()); got < 4 {
					errs <- fmt.Errorf("round %d: %d templates", r, got)
					return
				}
				if _, err := New(core.Materials, shard.NewMemSink(), nil); err != nil {
					errs <- err
					return
				}
				Domains()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Scratch domains leak into the package-level registry; confirm the
	// four real templates are still intact for later tests.
	for _, d := range core.Domains() {
		if _, err := Lookup(d); err != nil {
			t.Fatal(err)
		}
	}
}
