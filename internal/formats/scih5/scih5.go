// Package scih5 implements a hierarchical, chunked, checksummed binary
// container — the reproduction's stand-in for HDF5 (paper Fig. 1 lists
// HDF5 as an AI-ready target format; fusion pipelines shard to
// "TFRecord/HDF5", Table 1). It preserves the HDF5 semantics the
// pipelines rely on: a group tree addressed by slash paths, typed
// n-dimensional datasets with attributes, chunked storage along the first
// axis, optional per-chunk DEFLATE compression, and per-chunk CRC32
// integrity checks.
//
// On-disk layout:
//
//	[8]  magic "SCIH5\x01\x00\x00"
//	[..] chunk payloads, append-only
//	[..] JSON-encoded object tree (groups, datasets, chunk index)
//	[8]  little-endian offset of the JSON tree
//	[4]  little-endian CRC32 of the JSON tree
//	[4]  trailer magic "H5EN"
package scih5

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"strings"
)

var (
	magic   = []byte("SCIH5\x01\x00\x00")
	trailer = []byte("H5EN")
)

// ErrCorrupt reports a checksum failure.
var ErrCorrupt = errors.New("scih5: checksum mismatch")

// ErrNotFound reports a missing object path.
var ErrNotFound = errors.New("scih5: object not found")

// DType identifies a dataset element type.
type DType string

// Supported element types.
const (
	Float32 DType = "f4"
	Float64 DType = "f8"
	Int64   DType = "i8"
)

func (d DType) size() (int, error) {
	switch d {
	case Float32:
		return 4, nil
	case Float64, Int64:
		return 8, nil
	}
	return 0, fmt.Errorf("scih5: unsupported dtype %q", string(d))
}

// chunkRef locates one stored chunk.
type chunkRef struct {
	Offset int64  `json:"off"`
	Size   int64  `json:"sz"`  // stored (possibly compressed) bytes
	Raw    int64  `json:"raw"` // uncompressed bytes
	CRC    uint32 `json:"crc"` // of the stored bytes
	Rows   int    `json:"rows"`
}

// Dataset describes one stored array.
type Dataset struct {
	Path       string             `json:"path"`
	Shape      []int              `json:"shape"`
	DType      DType              `json:"dtype"`
	Attrs      map[string]string  `json:"attrs,omitempty"`
	NumAttrs   map[string]float64 `json:"nattrs,omitempty"`
	Compressed bool               `json:"compressed"`
	ChunkRows  int                `json:"chunk_rows"`
	Chunks     []chunkRef         `json:"chunks"`
}

// Numel returns the number of elements implied by the shape.
func (d *Dataset) Numel() int {
	n := 1
	for _, s := range d.Shape {
		n *= s
	}
	return n
}

// rowElems returns elements per first-axis row (1 for scalars/vectors of rank<=1).
func (d *Dataset) rowElems() int {
	n := 1
	for _, s := range d.Shape[1:] {
		n *= s
	}
	return n
}

type tree struct {
	Groups   []string          `json:"groups"`
	Datasets []*Dataset        `json:"datasets"`
	Attrs    map[string]string `json:"attrs,omitempty"` // group-path -> description
}

// Writer builds a container in memory.
type Writer struct {
	buf      bytes.Buffer
	tree     tree
	paths    map[string]bool
	Compress bool // apply DEFLATE per chunk
	// ChunkRows bounds rows (first-axis slices) per chunk; 0 = one chunk.
	ChunkRows int
	finalized bool
}

// NewWriter returns a Writer with compression enabled and 256-row chunks.
func NewWriter() *Writer {
	w := &Writer{
		paths:     make(map[string]bool),
		Compress:  true,
		ChunkRows: 256,
	}
	w.buf.Write(magic)
	w.tree.Attrs = make(map[string]string)
	return w
}

func cleanPath(p string) (string, error) {
	if !strings.HasPrefix(p, "/") {
		return "", fmt.Errorf("scih5: path %q must be absolute", p)
	}
	p = strings.TrimRight(p, "/")
	if p == "" {
		p = "/"
	}
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		if part == "" && p != "/" {
			return "", fmt.Errorf("scih5: path %q has empty component", p)
		}
	}
	return p, nil
}

// CreateGroup registers a group path (parents are created implicitly).
func (w *Writer) CreateGroup(path string) error {
	p, err := cleanPath(path)
	if err != nil {
		return err
	}
	w.ensureGroups(p)
	return nil
}

func (w *Writer) ensureGroups(p string) {
	if p == "/" {
		return
	}
	parts := strings.Split(strings.TrimPrefix(p, "/"), "/")
	cur := ""
	for _, part := range parts {
		cur += "/" + part
		if !w.paths[cur] {
			w.paths[cur] = true
			w.tree.Groups = append(w.tree.Groups, cur)
		}
	}
}

// SetGroupAttr attaches a description string to a group path.
func (w *Writer) SetGroupAttr(path, value string) error {
	p, err := cleanPath(path)
	if err != nil {
		return err
	}
	w.ensureGroups(p)
	w.tree.Attrs[p] = value
	return nil
}

// WriteFloat64 stores data (row-major, shape-checked) at path as float64.
func (w *Writer) WriteFloat64(path string, data []float64, shape []int, attrs map[string]string) error {
	return w.write(path, data, shape, Float64, attrs)
}

// WriteFloat32 stores data at path narrowed to float32.
func (w *Writer) WriteFloat32(path string, data []float64, shape []int, attrs map[string]string) error {
	return w.write(path, data, shape, Float32, attrs)
}

// WriteInt64 stores data at path as int64 (values are truncated).
func (w *Writer) WriteInt64(path string, data []float64, shape []int, attrs map[string]string) error {
	return w.write(path, data, shape, Int64, attrs)
}

func (w *Writer) write(path string, data []float64, shape []int, dtype DType, attrs map[string]string) error {
	if w.finalized {
		return errors.New("scih5: writer already finalized")
	}
	p, err := cleanPath(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return errors.New("scih5: cannot create dataset at root")
	}
	if w.paths[p] {
		return fmt.Errorf("scih5: object %q already exists", p)
	}
	esize, err := dtype.size()
	if err != nil {
		return err
	}
	n := 1
	for _, s := range shape {
		if s < 0 {
			return fmt.Errorf("scih5: negative dimension %d", s)
		}
		n *= s
	}
	if n != len(data) {
		return fmt.Errorf("scih5: shape %v needs %d elements, have %d", shape, n, len(data))
	}

	parent := p[:strings.LastIndex(p, "/")]
	if parent != "" {
		w.ensureGroups(parent)
	}
	w.paths[p] = true

	ds := &Dataset{
		Path:       p,
		Shape:      append([]int(nil), shape...),
		DType:      dtype,
		Attrs:      attrs,
		Compressed: w.Compress,
	}

	rows := 1
	if len(shape) > 0 {
		rows = shape[0]
	}
	rowElems := 1
	if len(shape) > 0 {
		rowElems = n
		if shape[0] > 0 {
			rowElems = n / shape[0]
		}
	}
	chunkRows := w.ChunkRows
	if chunkRows <= 0 || chunkRows > rows {
		chunkRows = rows
	}
	if chunkRows == 0 {
		chunkRows = 1
	}
	ds.ChunkRows = chunkRows

	for start := 0; start < rows || (rows == 0 && start == 0); start += chunkRows {
		cr := chunkRows
		if start+cr > rows {
			cr = rows - start
		}
		elems := cr * rowElems
		if rows == 0 {
			elems = 0
		}
		raw := make([]byte, elems*esize)
		src := data[start*rowElems : start*rowElems+elems]
		encodeValues(raw, src, dtype)

		stored := raw
		if w.Compress {
			var cbuf bytes.Buffer
			fw, err := flate.NewWriter(&cbuf, flate.BestSpeed)
			if err != nil {
				return fmt.Errorf("scih5: flate init: %w", err)
			}
			if _, err := fw.Write(raw); err != nil {
				return fmt.Errorf("scih5: compress: %w", err)
			}
			if err := fw.Close(); err != nil {
				return fmt.Errorf("scih5: compress close: %w", err)
			}
			stored = cbuf.Bytes()
		}
		ref := chunkRef{
			Offset: int64(w.buf.Len()),
			Size:   int64(len(stored)),
			Raw:    int64(len(raw)),
			CRC:    crc32.ChecksumIEEE(stored),
			Rows:   cr,
		}
		w.buf.Write(stored)
		ds.Chunks = append(ds.Chunks, ref)
		if rows == 0 {
			break
		}
	}
	w.tree.Datasets = append(w.tree.Datasets, ds)
	return nil
}

func encodeValues(dst []byte, src []float64, dtype DType) {
	switch dtype {
	case Float32:
		for i, v := range src {
			binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(float32(v)))
		}
	case Float64:
		for i, v := range src {
			binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
		}
	case Int64:
		for i, v := range src {
			binary.LittleEndian.PutUint64(dst[i*8:], uint64(int64(v)))
		}
	}
}

// Finalize appends the object tree and trailer and returns the container
// bytes. The writer cannot be used afterwards.
func (w *Writer) Finalize() ([]byte, error) {
	if w.finalized {
		return nil, errors.New("scih5: writer already finalized")
	}
	w.finalized = true
	sort.Strings(w.tree.Groups)
	treeOff := int64(w.buf.Len())
	enc, err := json.Marshal(&w.tree)
	if err != nil {
		return nil, fmt.Errorf("scih5: encode tree: %w", err)
	}
	w.buf.Write(enc)
	var tail [16]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(treeOff))
	binary.LittleEndian.PutUint32(tail[8:12], crc32.ChecksumIEEE(enc))
	copy(tail[12:], trailer)
	w.buf.Write(tail[:])
	return w.buf.Bytes(), nil
}

// File is a decoded container.
type File struct {
	b      []byte
	tree   tree
	byPath map[string]*Dataset
}

// Open parses a container produced by Writer.Finalize.
func Open(b []byte) (*File, error) {
	if len(b) < len(magic)+16 || !bytes.Equal(b[:len(magic)], magic) {
		return nil, errors.New("scih5: bad magic")
	}
	tail := b[len(b)-16:]
	if !bytes.Equal(tail[12:], trailer) {
		return nil, errors.New("scih5: bad trailer")
	}
	treeOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	wantCRC := binary.LittleEndian.Uint32(tail[8:12])
	if treeOff < int64(len(magic)) || treeOff > int64(len(b)-16) {
		return nil, errors.New("scih5: tree offset out of range")
	}
	enc := b[treeOff : len(b)-16]
	if crc32.ChecksumIEEE(enc) != wantCRC {
		return nil, fmt.Errorf("%w: object tree", ErrCorrupt)
	}
	f := &File{b: b, byPath: make(map[string]*Dataset)}
	if err := json.Unmarshal(enc, &f.tree); err != nil {
		return nil, fmt.Errorf("scih5: decode tree: %w", err)
	}
	for _, ds := range f.tree.Datasets {
		f.byPath[ds.Path] = ds
	}
	return f, nil
}

// Groups lists group paths in sorted order.
func (f *File) Groups() []string { return f.tree.Groups }

// GroupAttr returns the description attached to a group path.
func (f *File) GroupAttr(path string) (string, bool) {
	v, ok := f.tree.Attrs[path]
	return v, ok
}

// Datasets lists all dataset descriptors.
func (f *File) Datasets() []*Dataset { return f.tree.Datasets }

// Dataset returns the descriptor at path.
func (f *File) Dataset(path string) (*Dataset, error) {
	p, err := cleanPath(path)
	if err != nil {
		return nil, err
	}
	ds, ok := f.byPath[p]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, p)
	}
	return ds, nil
}

// Read decompresses, verifies, and widens the dataset at path to float64.
func (f *File) Read(path string) ([]float64, []int, error) {
	ds, err := f.Dataset(path)
	if err != nil {
		return nil, nil, err
	}
	esize, err := ds.DType.size()
	if err != nil {
		return nil, nil, err
	}
	out := make([]float64, 0, ds.Numel())
	for ci, c := range ds.Chunks {
		if c.Offset < 0 || c.Offset+c.Size > int64(len(f.b)) {
			return nil, nil, fmt.Errorf("scih5: chunk %d of %q out of bounds", ci, path)
		}
		stored := f.b[c.Offset : c.Offset+c.Size]
		if crc32.ChecksumIEEE(stored) != c.CRC {
			return nil, nil, fmt.Errorf("%w: chunk %d of %q", ErrCorrupt, ci, path)
		}
		raw := stored
		if ds.Compressed {
			fr := flate.NewReader(bytes.NewReader(stored))
			raw, err = io.ReadAll(fr)
			if err != nil {
				return nil, nil, fmt.Errorf("scih5: decompress chunk %d of %q: %w", ci, path, err)
			}
			if err := fr.Close(); err != nil {
				return nil, nil, fmt.Errorf("scih5: close inflater: %w", err)
			}
		}
		if int64(len(raw)) != c.Raw {
			return nil, nil, fmt.Errorf("%w: chunk %d of %q raw size %d != %d", ErrCorrupt, ci, path, len(raw), c.Raw)
		}
		n := len(raw) / esize
		for i := 0; i < n; i++ {
			switch ds.DType {
			case Float32:
				out = append(out, float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))))
			case Float64:
				out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:])))
			case Int64:
				out = append(out, float64(int64(binary.LittleEndian.Uint64(raw[i*8:]))))
			}
		}
	}
	if len(out) != ds.Numel() {
		return nil, nil, fmt.Errorf("%w: %q decoded %d elements, shape needs %d", ErrCorrupt, path, len(out), ds.Numel())
	}
	return out, append([]int(nil), ds.Shape...), nil
}

// ReadRows reads rows [start, start+count) along the first axis of the
// dataset, touching only the chunks that overlap — the partial-read
// pattern HPC dataloaders use.
func (f *File) ReadRows(path string, start, count int) ([]float64, error) {
	ds, err := f.Dataset(path)
	if err != nil {
		return nil, err
	}
	if len(ds.Shape) == 0 {
		return nil, errors.New("scih5: ReadRows on scalar dataset")
	}
	rows := ds.Shape[0]
	if start < 0 || count < 0 || start+count > rows {
		return nil, fmt.Errorf("scih5: rows [%d,%d) out of [0,%d)", start, start+count, rows)
	}
	esize, _ := ds.DType.size()
	rowElems := ds.rowElems()
	out := make([]float64, 0, count*rowElems)

	chunkStart := 0
	for ci, c := range ds.Chunks {
		chunkEnd := chunkStart + c.Rows
		if chunkEnd <= start || chunkStart >= start+count {
			chunkStart = chunkEnd
			continue
		}
		stored := f.b[c.Offset : c.Offset+c.Size]
		if crc32.ChecksumIEEE(stored) != c.CRC {
			return nil, fmt.Errorf("%w: chunk %d of %q", ErrCorrupt, ci, path)
		}
		raw := stored
		if ds.Compressed {
			fr := flate.NewReader(bytes.NewReader(stored))
			raw, err = io.ReadAll(fr)
			if err != nil {
				return nil, fmt.Errorf("scih5: decompress chunk %d: %w", ci, err)
			}
			_ = fr.Close()
		}
		lo := max(start, chunkStart) - chunkStart
		hi := min(start+count, chunkEnd) - chunkStart
		for r := lo; r < hi; r++ {
			base := r * rowElems * esize
			for e := 0; e < rowElems; e++ {
				off := base + e*esize
				switch ds.DType {
				case Float32:
					out = append(out, float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[off:]))))
				case Float64:
					out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(raw[off:])))
				case Int64:
					out = append(out, float64(int64(binary.LittleEndian.Uint64(raw[off:]))))
				}
			}
		}
		chunkStart = chunkEnd
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
