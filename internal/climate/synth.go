// Package climate implements the climate archetype (paper §3.1, Table 1):
// CMIP6-like gridded fields are ingested from NetCDF/GRIB, cleaned,
// regridded, normalized per variable, and sharded to NPZ — the
// download → regrid → normalize → shard pattern of ClimaX/ORBIT.
package climate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/formats/netcdf"
	"repro/internal/tensor"
)

// SynthConfig sizes the synthetic CMIP6-like generator.
type SynthConfig struct {
	Months      int
	Lat, Lon    int
	MissingRate float64 // fraction of cells dropped to NaN (sensor gaps)
	Seed        int64
}

// DefaultSynthConfig returns a laptop-scale dataset: 24 months of a
// 32x64 global temperature grid with 0.5% gaps.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{Months: 24, Lat: 32, Lon: 64, MissingRate: 0.005, Seed: 1}
}

// Field is an in-memory gridded variable stack [time, lat, lon] with
// coordinate vectors.
type Field struct {
	Name  string
	Units string
	Data  *tensor.Tensor // [T, Lat, Lon]
	Lats  []float64
	Lons  []float64
}

// Synthesize builds a physically plausible surface-temperature field:
// latitudinal gradient + seasonal cycle + topographic texture + noise,
// with NaN gaps at the configured rate.
func Synthesize(cfg SynthConfig) (*Field, error) {
	if cfg.Months <= 0 || cfg.Lat <= 1 || cfg.Lon <= 1 {
		return nil, fmt.Errorf("climate: invalid grid %dx%dx%d", cfg.Months, cfg.Lat, cfg.Lon)
	}
	if cfg.MissingRate < 0 || cfg.MissingRate >= 1 {
		return nil, fmt.Errorf("climate: missing rate %v out of [0,1)", cfg.MissingRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Field{
		Name:  "tas",
		Units: "K",
		Data:  tensor.New(cfg.Months, cfg.Lat, cfg.Lon),
		Lats:  make([]float64, cfg.Lat),
		Lons:  make([]float64, cfg.Lon),
	}
	for i := range f.Lats {
		f.Lats[i] = -90 + 180*float64(i)/float64(cfg.Lat-1)
	}
	for j := range f.Lons {
		f.Lons[j] = 360 * float64(j) / float64(cfg.Lon)
	}
	data := f.Data.Data()
	idx := 0
	for t := 0; t < cfg.Months; t++ {
		season := 10 * math.Sin(2*math.Pi*float64(t)/12)
		for i := 0; i < cfg.Lat; i++ {
			latRad := f.Lats[i] * math.Pi / 180
			base := 288 - 35*math.Abs(math.Sin(latRad)) // equator warm, poles cold
			hemi := math.Copysign(1, f.Lats[i])
			for j := 0; j < cfg.Lon; j++ {
				lonRad := f.Lons[j] * math.Pi / 180
				topo := 3 * math.Sin(3*lonRad) * math.Cos(2*latRad)
				v := base - hemi*season + topo + rng.NormFloat64()*1.5
				if rng.Float64() < cfg.MissingRate {
					v = math.NaN()
				}
				data[idx] = v
				idx++
			}
		}
	}
	return f, nil
}

// ToNetCDF encodes the field as a classic NetCDF file with CF-style
// metadata (the community-standard ingest format).
func (f *Field) ToNetCDF() ([]byte, error) {
	nc := &netcdf.File{NumRecs: f.Data.Dim(0)}
	timeID := nc.AddDim("time", 0, true)
	latID := nc.AddDim("lat", len(f.Lats), false)
	lonID := nc.AddDim("lon", len(f.Lons), false)
	nc.GlobalAttrs = []netcdf.Attr{
		netcdf.CharAttr("Conventions", "CF-1.8"),
		netcdf.CharAttr("source", "repro synthetic CMIP6-like generator"),
		netcdf.CharAttr("frequency", "mon"),
	}
	// Replace NaN with the CF _FillValue for on-disk representation.
	const fillValue = 9.96921e36
	onDisk := make([]float64, f.Data.Numel())
	for i, v := range f.Data.Data() {
		if math.IsNaN(v) {
			onDisk[i] = fillValue
		} else {
			onDisk[i] = v
		}
	}
	nc.Vars = []netcdf.Var{
		{Name: "lat", Type: netcdf.Double, DimIDs: []int{latID},
			Attrs: []netcdf.Attr{netcdf.CharAttr("units", "degrees_north")},
			Data:  f.Lats},
		{Name: "lon", Type: netcdf.Double, DimIDs: []int{lonID},
			Attrs: []netcdf.Attr{netcdf.CharAttr("units", "degrees_east")},
			Data:  f.Lons},
		{Name: f.Name, Type: netcdf.Float, DimIDs: []int{timeID, latID, lonID},
			Attrs: []netcdf.Attr{
				netcdf.CharAttr("units", f.Units),
				netcdf.CharAttr("standard_name", "air_temperature"),
				netcdf.DoubleAttr("_FillValue", fillValue),
			},
			Data: onDisk},
	}
	return netcdf.Encode(nc)
}

// FromNetCDF decodes a field from classic NetCDF, restoring _FillValue
// cells to NaN.
func FromNetCDF(b []byte, varName string) (*Field, error) {
	nc, err := netcdf.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("climate: decode netcdf: %w", err)
	}
	v := nc.VarByName(varName)
	if v == nil {
		return nil, fmt.Errorf("climate: variable %q not in file", varName)
	}
	shape := nc.VarShape(v)
	if len(shape) != 3 {
		return nil, fmt.Errorf("climate: variable %q has shape %v, want [time,lat,lon]", varName, shape)
	}
	fill := math.NaN()
	units := ""
	for _, a := range v.Attrs {
		switch a.Name {
		case "_FillValue":
			if len(a.Values) == 1 {
				fill = a.Values[0]
			}
		case "units":
			units = a.Str
		}
	}
	data := append([]float64(nil), v.Data...)
	if !math.IsNaN(fill) {
		for i, x := range data {
			// float32 storage rounds the fill value; match loosely.
			if math.Abs(x-fill) < math.Abs(fill)*1e-6 {
				data[i] = math.NaN()
			}
		}
	}
	grid, err := tensor.FromSlice(data, shape...)
	if err != nil {
		return nil, err
	}
	f := &Field{Name: varName, Units: units, Data: grid}
	if lat := nc.VarByName("lat"); lat != nil {
		f.Lats = append([]float64(nil), lat.Data...)
	}
	if lon := nc.VarByName("lon"); lon != nil {
		f.Lons = append([]float64(nil), lon.Data...)
	}
	return f, nil
}

// SynthesizeVars generates several physically distinct variables on one
// grid: "tas" (surface temperature), "pr" (precipitation: non-negative,
// skewed, ITCZ-peaked), and "psl" (sea-level pressure). Unknown names are
// rejected. All fields share coordinates, mirroring a CMIP6 ensemble
// member.
func SynthesizeVars(cfg SynthConfig, names []string) ([]*Field, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("climate: no variables requested")
	}
	base, err := Synthesize(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]*Field, 0, len(names))
	for vi, name := range names {
		switch name {
		case "tas":
			f := &Field{Name: "tas", Units: "K", Data: base.Data.Clone(),
				Lats: base.Lats, Lons: base.Lons}
			out = append(out, f)
		case "pr":
			rng := rand.New(rand.NewSource(cfg.Seed + int64(vi) + 1000))
			f := &Field{Name: "pr", Units: "kg m-2 s-1",
				Data: tensor.New(cfg.Months, cfg.Lat, cfg.Lon),
				Lats: base.Lats, Lons: base.Lons}
			data := f.Data.Data()
			idx := 0
			for t := 0; t < cfg.Months; t++ {
				for i := 0; i < cfg.Lat; i++ {
					latRad := f.Lats[i] * math.Pi / 180
					// ITCZ: rain peaks near the equator.
					itcz := math.Exp(-latRad * latRad / 0.15)
					for j := 0; j < cfg.Lon; j++ {
						v := 2e-5 * itcz * math.Abs(1+0.5*rng.NormFloat64())
						if rng.Float64() < cfg.MissingRate {
							v = math.NaN()
						}
						data[idx] = v
						idx++
					}
				}
			}
			out = append(out, f)
		case "psl":
			rng := rand.New(rand.NewSource(cfg.Seed + int64(vi) + 2000))
			f := &Field{Name: "psl", Units: "Pa",
				Data: tensor.New(cfg.Months, cfg.Lat, cfg.Lon),
				Lats: base.Lats, Lons: base.Lons}
			data := f.Data.Data()
			idx := 0
			for t := 0; t < cfg.Months; t++ {
				for i := 0; i < cfg.Lat; i++ {
					latRad := f.Lats[i] * math.Pi / 180
					for j := 0; j < cfg.Lon; j++ {
						// Subtropical highs around +-30 degrees.
						v := 101325 + 1500*math.Cos(3*latRad) + 100*rng.NormFloat64()
						if rng.Float64() < cfg.MissingRate {
							v = math.NaN()
						}
						data[idx] = v
						idx++
					}
				}
			}
			out = append(out, f)
		default:
			return nil, fmt.Errorf("climate: unknown variable %q (have tas, pr, psl)", name)
		}
	}
	return out, nil
}

// FieldsToNetCDF encodes several same-grid fields into one classic NetCDF
// file (a multi-variable CMIP6-like file).
func FieldsToNetCDF(fields []*Field) ([]byte, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("climate: no fields")
	}
	first := fields[0]
	nc := &netcdf.File{NumRecs: first.Data.Dim(0)}
	timeID := nc.AddDim("time", 0, true)
	latID := nc.AddDim("lat", len(first.Lats), false)
	lonID := nc.AddDim("lon", len(first.Lons), false)
	nc.GlobalAttrs = []netcdf.Attr{
		netcdf.CharAttr("Conventions", "CF-1.8"),
		netcdf.CharAttr("source", "repro synthetic CMIP6-like generator"),
	}
	nc.Vars = []netcdf.Var{
		{Name: "lat", Type: netcdf.Double, DimIDs: []int{latID},
			Attrs: []netcdf.Attr{netcdf.CharAttr("units", "degrees_north")},
			Data:  first.Lats},
		{Name: "lon", Type: netcdf.Double, DimIDs: []int{lonID},
			Attrs: []netcdf.Attr{netcdf.CharAttr("units", "degrees_east")},
			Data:  first.Lons},
	}
	const fillValue = 9.96921e36
	for _, f := range fields {
		if f.Data.Dim(0) != first.Data.Dim(0) || f.Data.Dim(1) != len(first.Lats) || f.Data.Dim(2) != len(first.Lons) {
			return nil, fmt.Errorf("climate: field %q grid mismatch", f.Name)
		}
		onDisk := make([]float64, f.Data.Numel())
		for i, v := range f.Data.Data() {
			if math.IsNaN(v) {
				onDisk[i] = fillValue
			} else {
				onDisk[i] = v
			}
		}
		nc.Vars = append(nc.Vars, netcdf.Var{
			Name: f.Name, Type: netcdf.Float, DimIDs: []int{timeID, latID, lonID},
			Attrs: []netcdf.Attr{
				netcdf.CharAttr("units", f.Units),
				netcdf.DoubleAttr("_FillValue", fillValue),
			},
			Data: onDisk,
		})
	}
	return netcdf.Encode(nc)
}
