// Package experiments implements the reproduction's experiment harness:
// one runner per paper artifact (Figure 1, Table 1, Table 2) and one per
// quantitative claim (C1 parallel I/O scaling, C2 curation-time share,
// C3 iterative feedback). cmd/benchreport renders them; the root
// bench_test.go wraps them in testing.B benchmarks. See EXPERIMENTS.md
// for the paper-vs-measured record.
package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/augment"
	"repro/internal/bio"
	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/fusion"
	"repro/internal/label"
	"repro/internal/materials"
	"repro/internal/parfs"
	"repro/internal/pipeline"
	"repro/internal/quality"
	"repro/internal/shard"
	"repro/internal/split"
	"repro/internal/tensor"
)

// --- E1: Figure 1 ------------------------------------------------------------

// Fig1Step is one executed step of the Figure 1 raw→AI-ready flow.
type Fig1Step struct {
	Name     string
	Detail   string
	Duration time.Duration
}

// Fig1Result reproduces Figure 1: every box of the paper's pipeline
// executed in order on a synthetic image-like scientific dataset.
type Fig1Result struct {
	Steps      []Fig1Step
	SamplesIn  int
	SamplesOut int
	ShardCount int
	FinalLevel core.Level
}

// RunFig1 executes the Figure 1 flow: clean missing values → normalize →
// augment → (pseudo-)label → feature engineering → split → shard/export.
func RunFig1(samples, h, w int, seed int64) (*Fig1Result, error) {
	res := &Fig1Result{SamplesIn: samples}
	step := func(name, detail string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("fig1 step %s: %w", name, err)
		}
		res.Steps = append(res.Steps, Fig1Step{Name: name, Detail: detail, Duration: time.Since(start)})
		return nil
	}

	// Source: synthetic image-like samples from two latent classes, with
	// missing pixels.
	field, err := climate.Synthesize(climate.SynthConfig{
		Months: samples, Lat: h, Lon: w, MissingRate: 0.02, Seed: seed})
	if err != nil {
		return nil, err
	}
	grids := make([]*tensor.Tensor, samples)
	truth := make([]int, samples)
	for i := 0; i < samples; i++ {
		g, err := field.Data.SubTensor(i)
		if err != nil {
			return nil, err
		}
		grids[i] = g
		truth[i] = (i % 12) / 6 // two halves of the seasonal cycle
	}

	if err = step("clean", "fill missing values by interpolation", func() error {
		for _, g := range grids {
			if _, _, err := quality.FillMissing(g, quality.FillInterpolate, 0); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err = step("normalize", "per-sample z-score (mean/std)", func() error {
		for _, g := range grids {
			g.Normalize()
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var augmented []*tensor.Tensor
	var augLabelsTruth []int
	if err = step("augment", "flips + gaussian noise", func() error {
		pol := augment.Policy{Flips: true, NoiseSigma: 0.05, Seed: seed}
		out, err := pol.Apply(grids)
		if err != nil {
			return err
		}
		augmented = out
		labelsStr := make([]string, len(truth))
		for i, l := range truth {
			labelsStr[i] = fmt.Sprintf("%d", l)
		}
		expanded, err := pol.ExpandLabels(labelsStr)
		if err != nil {
			return err
		}
		augLabelsTruth = make([]int, len(expanded))
		for i, s := range expanded {
			augLabelsTruth[i] = int(s[0] - '0')
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var finalLabels []int
	if err = step("label", "pseudo-labeling from 20% seeds", func() error {
		features := make([][]float64, len(augmented))
		for i, g := range augmented {
			features[i] = []float64{g.Mean(), g.Std(), g.Max() - g.Min(), g.At(0, 0), g.At(h/2, w/2)}
		}
		partial := make([]int, len(augLabelsTruth))
		for i := range partial {
			if i%5 == 0 {
				partial[i] = augLabelsTruth[i]
			} else {
				partial[i] = -1
			}
		}
		out, _, err := label.PseudoLabel(label.NewKNN(5), features, partial, label.DefaultPseudoLabelConfig())
		finalLabels = out
		return err
	}); err != nil {
		return nil, err
	}

	var featureVecs [][]float32
	if err = step("feature-engineer", "moment + extremum features", func() error {
		featureVecs = make([][]float32, len(augmented))
		for i, g := range augmented {
			featureVecs[i] = []float32{
				float32(g.Mean()), float32(g.Std()),
				float32(g.Min()), float32(g.Max()), float32(g.Sum()),
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var parts *split.Result
	if err = step("split", "train/val/test 80/10/10", func() error {
		var err error
		parts, err = split.Random(len(augmented), split.DefaultFractions(), seed)
		return err
	}); err != nil {
		return nil, err
	}

	sink := shard.NewMemSink()
	if err = step("shard-export", "compressed binary shards", func() error {
		sw, err := shard.NewWriter(sink, shard.Options{Prefix: "fig1", TargetBytes: 16 << 10, Compress: true})
		if err != nil {
			return err
		}
		for _, i := range parts.Train {
			lab := int32(-1)
			if finalLabels[i] >= 0 {
				lab = int32(finalLabels[i])
			}
			rec := encodeSample(featureVecs[i], lab)
			if err := sw.Write(rec); err != nil {
				return err
			}
		}
		m, err := sw.Close()
		if err != nil {
			return err
		}
		res.ShardCount = len(m.Shards)
		return nil
	}); err != nil {
		return nil, err
	}

	res.SamplesOut = len(augmented)
	res.FinalLevel = core.AIReady
	return res, nil
}

func encodeSample(features []float32, lab int32) []byte {
	var b bytes.Buffer
	for _, f := range features {
		fmt.Fprintf(&b, "%.6g,", f)
	}
	fmt.Fprintf(&b, "label=%d", lab)
	return b.Bytes()
}

// Render prints the Fig1 result as the paper's flow.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 reproduction — raw → AI-ready (%d samples in, %d out, %d shards)\n",
		r.SamplesIn, r.SamplesOut, r.ShardCount)
	for i, s := range r.Steps {
		arrow := "  "
		if i > 0 {
			arrow = "→ "
		}
		fmt.Fprintf(&b, "  %s%-18s %-44s %10s\n", arrow, s.Name, s.Detail, s.Duration.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "  final readiness: %s\n", r.FinalLevel)
	return b.String()
}

// --- E2: Table 1 --------------------------------------------------------------

// Table1Row is one domain archetype's execution record.
type Table1Row struct {
	Domain     core.Domain
	Steps      []string // executed stage names
	Modality   string
	Records    int64
	Duration   time.Duration
	FinalLevel core.Level
	StageKinds []core.Stage
	Challenge  string // measured instance of the Table 1 challenge column
}

// RunTable1 executes all four domain archetype pipelines on synthetic
// inputs and reports one row per domain.
func RunTable1(seed int64) ([]Table1Row, error) {
	var rows []Table1Row

	// Climate.
	{
		field, err := climate.Synthesize(climate.SynthConfig{Months: 24, Lat: 24, Lon: 48, MissingRate: 0.01, Seed: seed})
		if err != nil {
			return nil, err
		}
		raw, err := field.ToNetCDF()
		if err != nil {
			return nil, err
		}
		sink := shard.NewMemSink()
		p, err := climate.NewPipeline(climate.Config{TargetLat: 12, TargetLon: 24, Method: climate.Bilinear, Workers: 4, ShardTargetBytes: 32 << 10, Seed: seed}, sink)
		if err != nil {
			return nil, err
		}
		ds := climate.NewDataset("cmip6-synth", raw)
		start := time.Now()
		snaps, err := p.Run(ds)
		if err != nil {
			return nil, fmt.Errorf("climate archetype: %w", err)
		}
		prod := ds.Payload.(*climate.Product)
		rows = append(rows, Table1Row{
			Domain: core.Climate, Steps: stageNames(p), Modality: "Spatial, Temporal grids",
			Records: int64(len(prod.Samples)), Duration: time.Since(start),
			FinalLevel: snaps[len(snaps)-1].Assessment.Level,
			StageKinds: p.StageKinds(),
			Challenge:  fmt.Sprintf("pipeline throughput: %d shards", len(prod.Manifest.Shards)),
		})
	}

	// Fusion.
	{
		st, err := fusion.SynthesizeCampaign(fusion.SynthConfig{Shots: 12, DisruptionRate: 0.35, FlattopSeconds: 1.5, DropoutRate: 0.01, Seed: seed})
		if err != nil {
			return nil, err
		}
		sink := shard.NewMemSink()
		p, err := fusion.NewPipeline(fusion.DefaultConfig(), sink)
		if err != nil {
			return nil, err
		}
		ds := fusion.NewDataset("campaign-synth", st)
		start := time.Now()
		snaps, err := p.Run(ds)
		if err != nil {
			return nil, fmt.Errorf("fusion archetype: %w", err)
		}
		prod := ds.Payload.(*fusion.Product)
		rows = append(rows, Table1Row{
			Domain: core.Fusion, Steps: stageNames(p), Modality: "Time-series, Multi-channel signals",
			Records: int64(len(prod.Windows)), Duration: time.Since(start),
			FinalLevel: snaps[len(snaps)-1].Assessment.Level,
			StageKinds: p.StageKinds(),
			Challenge:  fmt.Sprintf("limited labels: %.1f%% positive windows", 100*fusion.DisruptionRate(prod.Windows)),
		})
	}

	// Bio/health.
	{
		cohort, err := bio.Synthesize(bio.SynthConfig{Subjects: 30, SeqLen: 400, Seed: seed})
		if err != nil {
			return nil, err
		}
		sink := shard.NewMemSink()
		enc := bytes.Repeat([]byte{0x42}, 32)
		p, err := bio.NewPipeline(bio.DefaultConfig(enc, []byte("benchreport-pseudonym-secret")), sink)
		if err != nil {
			return nil, err
		}
		ds := bio.NewDataset("cohort-synth", cohort.ToFASTA(), cohort.Clinical)
		start := time.Now()
		snaps, err := p.Run(ds)
		if err != nil {
			return nil, fmt.Errorf("bio archetype: %w", err)
		}
		prod := ds.Payload.(*bio.Product)
		rows = append(rows, Table1Row{
			Domain: core.BioHealth, Steps: stageNames(p), Modality: "Sequences, Images, Tabular",
			Records: int64(len(prod.Fused)), Duration: time.Since(start),
			FinalLevel: snaps[len(snaps)-1].Assessment.Level,
			StageKinds: p.StageKinds(),
			Challenge:  fmt.Sprintf("PHI/PII compliance: k=%d, %d suppressed, %d redactions", prod.Audit.K, prod.Audit.Suppressed, prod.Audit.Redactions),
		})
	}

	// Materials.
	{
		structs, err := materials.Synthesize(materials.SynthConfig{Structures: 40, MinAtoms: 4, MaxAtoms: 12, ImbalanceRatio: 5, Seed: seed})
		if err != nil {
			return nil, err
		}
		poscars := make([]string, len(structs))
		for i, s := range structs {
			poscars[i] = s.ToPOSCAR()
		}
		// nil sink: Table 1 only measures the pipeline; the durable
		// per-graph shard set would be built and thrown away.
		p, err := materials.NewPipeline(materials.DefaultConfig(), nil)
		if err != nil {
			return nil, err
		}
		ds := materials.NewDataset("omat-synth", poscars)
		start := time.Now()
		snaps, err := p.Run(ds)
		if err != nil {
			return nil, fmt.Errorf("materials archetype: %w", err)
		}
		prod := ds.Payload.(*materials.Product)
		rows = append(rows, Table1Row{
			Domain: core.Materials, Steps: stageNames(p), Modality: "Graph structures",
			Records: int64(len(prod.Graphs)), Duration: time.Since(start),
			FinalLevel: snaps[len(snaps)-1].Assessment.Level,
			StageKinds: p.StageKinds(),
			Challenge:  fmt.Sprintf("class imbalance: %.1f:1 in train split", prod.Imbalance),
		})
	}
	return rows, nil
}

func stageNames(p *pipeline.Pipeline) []string {
	var names []string
	for _, s := range p.Stages() {
		names = append(names, s.Name())
	}
	return names
}

// RenderTable1 prints the executed Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1 reproduction — domain archetype pipelines (executed)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %-36s records=%-6d final=%s (%s)\n",
			r.Domain, strings.Join(r.Steps, " → "), r.Records, r.FinalLevel, r.Duration.Round(time.Millisecond))
		fmt.Fprintf(&b, "  %-10s modality: %s; challenge observed: %s\n", "", r.Modality, r.Challenge)
	}
	return b.String()
}

// --- E3: Table 2 --------------------------------------------------------------

// Table2Result verifies the maturity-matrix staircase and carries a
// rendered matrix for the trajectory of a dataset advanced level by level.
type Table2Result struct {
	PopulatedCells int
	GreyCells      int
	Rendered       []string // one rendering per readiness level
	Monotone       bool
}

// RunTable2 reproduces Table 2: checks cell occupancy (15 populated, 10
// grey) and assesses a dataset frozen at each level.
func RunTable2() (*Table2Result, error) {
	res := &Table2Result{Monotone: true}
	for _, l := range core.Levels() {
		for _, s := range core.Stages() {
			if core.Applicable(l, s) {
				res.PopulatedCells++
			} else {
				res.GreyCells++
			}
		}
	}
	th := core.DefaultThresholds()
	prev := core.Level(0)
	for _, l := range core.Levels() {
		a := core.Assess(factsAt(l), th)
		if a.Level != l {
			return nil, fmt.Errorf("table2: facts for %v assessed as %v", l, a.Level)
		}
		if a.Level < prev {
			res.Monotone = false
		}
		prev = a.Level
		res.Rendered = append(res.Rendered, core.RenderMatrix(a))
	}
	return res, nil
}

// factsAt mirrors the core test helper: facts representative of a level.
func factsAt(l core.Level) core.Facts {
	f := core.Facts{}
	if l >= core.Raw {
		f.Acquired = true
	}
	if l >= core.Cleaned {
		f.StandardFormat, f.Validated, f.AlignedGrids = true, true, true
	}
	if l >= core.Labeled {
		f.LabelCoverage, f.Normalized, f.MetadataFields = 0.5, true, 5
	}
	if l >= core.FeatureEngineered {
		f.FeaturesExtracted, f.StructuredLayout = true, true
		f.LabelCoverage = 1
	}
	if l >= core.AIReady {
		f.SplitDone, f.Sharded, f.PipelineAutomated, f.AuditTrail = true, true, true, true
	}
	return f
}

// --- E4: C1 parallel sharding scaling -----------------------------------------

// ScalingPoint is one worker-count measurement.
type ScalingPoint struct {
	Workers    int
	Duration   time.Duration
	Throughput float64 // MiB/s
	Speedup    float64 // vs workers=1
}

// RunScaling shards totalMB of records across worker counts on a
// simulated striped parallel filesystem and reports the scaling curve
// (paper C1: efficient training at scale requires high-throughput,
// parallel file I/O).
func RunScaling(totalMB int, workerCounts []int, osts int) ([]ScalingPoint, error) {
	recSize := 64 << 10
	n := totalMB << 20 / recSize
	records := make([][]byte, n)
	for i := range records {
		rec := make([]byte, recSize)
		for j := 0; j < recSize; j += 97 {
			rec[j] = byte(i + j)
		}
		records[i] = rec
	}
	var points []ScalingPoint
	var base time.Duration
	for _, w := range workerCounts {
		fs, err := parfs.New(parfs.Config{OSTs: osts, StripeSize: 1 << 20, BandwidthMBps: 2048, LatencyMicros: 30})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		m, err := shard.ParallelWrite(fs, shard.Options{Prefix: "scale", TargetBytes: 4 << 20}, w, records)
		if err != nil {
			return nil, err
		}
		d := time.Since(start)
		if m.TotalRecords() != n {
			return nil, fmt.Errorf("scaling: lost records (%d/%d)", m.TotalRecords(), n)
		}
		if base == 0 {
			base = d
		}
		points = append(points, ScalingPoint{
			Workers:    w,
			Duration:   d,
			Throughput: float64(totalMB) / d.Seconds(),
			Speedup:    float64(base) / float64(d),
		})
	}
	return points, nil
}

// RenderScaling prints the scaling table.
func RenderScaling(points []ScalingPoint, totalMB, osts int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "C1 reproduction — parallel sharding of %d MiB on a %d-OST striped FS\n", totalMB, osts)
	fmt.Fprintf(&b, "  %8s %14s %14s %10s\n", "workers", "time", "MiB/s", "speedup")
	for _, p := range points {
		fmt.Fprintf(&b, "  %8d %14s %14.1f %9.2fx\n", p.Workers, p.Duration.Round(time.Millisecond), p.Throughput, p.Speedup)
	}
	return b.String()
}

// --- E5: C2 curation share ------------------------------------------------------

// CurationResult compares manual-equivalent vs automated fusion prep.
type CurationResult struct {
	ManualCurationShare float64
	ManualTotal         time.Duration
	AutoTotal           time.Duration
	AutoSpeedup         float64
}

// RunCuration measures the fraction of end-to-end time spent on curation
// stages in a manual-equivalent fusion workflow (serial, with per-shot
// re-validation overhead emulating hand curation) versus the automated
// pipeline (paper C2: "scientists spend upwards of 70% of their time on
// data curation").
func RunCuration(shots int, seed int64) (*CurationResult, error) {
	st, err := fusion.SynthesizeCampaign(fusion.SynthConfig{
		Shots: shots, DisruptionRate: 0.35, FlattopSeconds: 1.5, DropoutRate: 0.02, Seed: seed})
	if err != nil {
		return nil, err
	}

	// Manual-equivalent: per-shot serial extract + validate + re-validate
	// (the repeated inspection loop of hand curation), then one quick
	// model-prep step.
	var curation, rest time.Duration
	start := time.Now()
	var aligned []*fusion.AlignedShot
	for _, num := range st.Shots() {
		s, err := st.Get(num)
		if err != nil {
			return nil, err
		}
		// Hand curation revisits each shot several times (format checks,
		// visual inspection proxies, re-alignment).
		for pass := 0; pass < 3; pass++ {
			a, err := fusion.Align(s, 0.005)
			if err != nil {
				return nil, err
			}
			if pass == 2 {
				if err := a.AddDerivativeChannels(); err != nil {
					return nil, err
				}
				if _, err := a.NormalizePerShot(); err != nil {
					return nil, err
				}
				aligned = append(aligned, a)
			}
		}
	}
	curation = time.Since(start)

	start = time.Now()
	var windows []fusion.Window
	for _, a := range aligned {
		ws, err := fusion.Windowize(a, 50, 25, 0.3)
		if err != nil {
			return nil, err
		}
		windows = append(windows, ws...)
	}
	_ = windows
	rest = time.Since(start)
	manualTotal := curation + rest

	// Automated pipeline: one pass, parallel.
	sink := shard.NewMemSink()
	p, err := fusion.NewPipeline(fusion.DefaultConfig(), sink)
	if err != nil {
		return nil, err
	}
	ds := fusion.NewDataset("auto", st)
	start = time.Now()
	if _, err := p.Run(ds); err != nil {
		return nil, err
	}
	autoTotal := time.Since(start)

	res := &CurationResult{
		ManualCurationShare: float64(curation) / float64(manualTotal),
		ManualTotal:         manualTotal,
		AutoTotal:           autoTotal,
	}
	if autoTotal > 0 {
		res.AutoSpeedup = float64(manualTotal) / float64(autoTotal)
	}
	return res, nil
}

// Render prints the curation comparison.
func (r *CurationResult) Render() string {
	var b strings.Builder
	b.WriteString("C2 reproduction — curation-time share in fusion data prep\n")
	fmt.Fprintf(&b, "  manual-equivalent workflow: curation %.0f%% of %s total (paper: \"upwards of 70%%\")\n",
		100*r.ManualCurationShare, r.ManualTotal.Round(time.Millisecond))
	fmt.Fprintf(&b, "  automated pipeline: %s total (%.1fx faster end-to-end)\n",
		r.AutoTotal.Round(time.Millisecond), r.AutoSpeedup)
	return b.String()
}

// --- E6: C3 feedback loop --------------------------------------------------------

// FeedbackResult records the pseudo-labeling loop's trajectory.
type FeedbackResult struct {
	Rounds   []label.RoundStats
	Accuracy float64
}

// RunFeedback seeds 10% labels on a separable synthetic set and runs the
// iterative pseudo-labeling loop (paper C3 / Fig. 1's feedback edge).
func RunFeedback(n int, seed int64) (*FeedbackResult, error) {
	// Two separable clusters with label-correlated offsets.
	features := make([][]float64, n)
	truth := make([]int, n)
	for i := range features {
		c := i % 2
		cx := float64(c)*6 - 3
		// Deterministic pseudo-random jitter.
		j1 := math.Sin(float64(i)*12.9898+float64(seed)) * 1.2
		j2 := math.Cos(float64(i)*78.233+float64(seed)) * 1.2
		features[i] = []float64{cx + j1, cx + j2}
		truth[i] = c
	}
	labels := make([]int, n)
	for i := range labels {
		if i < n/10 {
			labels[i] = truth[i]
		} else {
			labels[i] = -1
		}
	}
	final, rounds, err := label.PseudoLabel(label.NewKNN(5), features, labels, label.DefaultPseudoLabelConfig())
	if err != nil {
		return nil, err
	}
	acc, err := label.Accuracy(final, truth)
	if err != nil {
		return nil, err
	}
	return &FeedbackResult{Rounds: rounds, Accuracy: acc}, nil
}

// Render prints the feedback trajectory.
func (r *FeedbackResult) Render() string {
	var b strings.Builder
	b.WriteString("C3 reproduction — iterative pseudo-labeling (Fig. 1 feedback loop)\n")
	fmt.Fprintf(&b, "  %6s %10s %10s %10s\n", "round", "accepted", "labeled", "coverage")
	for _, rd := range r.Rounds {
		fmt.Fprintf(&b, "  %6d %10d %10d %9.1f%%\n", rd.Round, rd.Accepted, rd.Labeled, 100*rd.Coverage)
	}
	fmt.Fprintf(&b, "  final label accuracy vs ground truth: %.1f%%\n", 100*r.Accuracy)
	return b.String()
}
