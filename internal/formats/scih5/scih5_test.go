package scih5

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripFloat64(t *testing.T) {
	w := NewWriter()
	data := []float64{1.5, -2.25, math.Pi, 0, 1e300, -1e-300}
	if err := w.WriteFloat64("/exp/run1/signal", data, []int{2, 3}, map[string]string{"units": "V"}); err != nil {
		t.Fatal(err)
	}
	b, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	got, shape, err := f.Read("/exp/run1/signal")
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) != 2 || shape[0] != 2 || shape[1] != 3 {
		t.Fatalf("shape=%v", shape)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("elem %d: %v != %v", i, got[i], data[i])
		}
	}
	ds, err := f.Dataset("/exp/run1/signal")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attrs["units"] != "V" {
		t.Fatalf("attrs=%v", ds.Attrs)
	}
}

func TestImplicitGroups(t *testing.T) {
	w := NewWriter()
	if err := w.WriteFloat64("/a/b/c/d", []float64{1}, []int{1}, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	groups := f.Groups()
	want := map[string]bool{"/a": true, "/a/b": true, "/a/b/c": true}
	found := 0
	for _, g := range groups {
		if want[g] {
			found++
		}
	}
	if found != 3 {
		t.Fatalf("groups=%v", groups)
	}
}

func TestGroupAttrs(t *testing.T) {
	w := NewWriter()
	if err := w.SetGroupAttr("/shots", "DIII-D campaign 2024"); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := f.GroupAttr("/shots")
	if !ok || v != "DIII-D campaign 2024" {
		t.Fatalf("attr=%q ok=%v", v, ok)
	}
	if _, ok := f.GroupAttr("/missing"); ok {
		t.Fatal("unexpected attr")
	}
}

func TestFloat32Narrowing(t *testing.T) {
	w := NewWriter()
	if err := w.WriteFloat32("/x", []float64{1.5, 2.5}, []int{2}, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, _ := Open(b)
	got, _, err := f.Read("/x")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1.5 || got[1] != 2.5 {
		t.Fatalf("got %v", got)
	}
	ds, _ := f.Dataset("/x")
	if ds.DType != Float32 {
		t.Fatalf("dtype=%s", ds.DType)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	w := NewWriter()
	data := []float64{-9007199254740992, 0, 42, 9007199254740992}
	if err := w.WriteInt64("/ids", data, []int{4}, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, _ := Open(b)
	got, _, err := f.Read("/ids")
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("elem %d: %v != %v", i, got[i], data[i])
		}
	}
}

func TestChunking(t *testing.T) {
	w := NewWriter()
	w.ChunkRows = 10
	data := make([]float64, 95*4)
	for i := range data {
		data[i] = float64(i)
	}
	if err := w.WriteFloat64("/big", data, []int{95, 4}, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, _ := Open(b)
	ds, _ := f.Dataset("/big")
	if len(ds.Chunks) != 10 { // ceil(95/10)
		t.Fatalf("chunks=%d", len(ds.Chunks))
	}
	got, _, err := f.Read("/big")
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("elem %d mismatch", i)
		}
	}
}

func TestReadRowsPartial(t *testing.T) {
	w := NewWriter()
	w.ChunkRows = 8
	data := make([]float64, 30*3)
	for i := range data {
		data[i] = float64(i)
	}
	if err := w.WriteFloat64("/m", data, []int{30, 3}, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, _ := Open(b)
	// Rows 5..20 span three chunks (0-7, 8-15, 16-23).
	got, err := f.ReadRows("/m", 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15*3 {
		t.Fatalf("len=%d", len(got))
	}
	for i := range got {
		want := float64(5*3 + i)
		if got[i] != want {
			t.Fatalf("elem %d: %v != %v", i, got[i], want)
		}
	}
}

func TestReadRowsBounds(t *testing.T) {
	w := NewWriter()
	if err := w.WriteFloat64("/m", []float64{1, 2, 3}, []int{3}, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, _ := Open(b)
	if _, err := f.ReadRows("/m", 2, 5); err == nil {
		t.Fatal("want bounds error")
	}
	if _, err := f.ReadRows("/m", -1, 1); err == nil {
		t.Fatal("want bounds error")
	}
}

func TestUncompressed(t *testing.T) {
	w := NewWriter()
	w.Compress = false
	data := []float64{9, 8, 7}
	if err := w.WriteFloat64("/u", data, []int{3}, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, _ := Open(b)
	got, _, err := f.Read("/u")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[2] != 7 {
		t.Fatalf("got %v", got)
	}
	ds, _ := f.Dataset("/u")
	if ds.Compressed {
		t.Fatal("should be uncompressed")
	}
}

func TestCompressionShrinksRedundantData(t *testing.T) {
	data := make([]float64, 10000) // all zeros: highly compressible
	wc := NewWriter()
	wc.ChunkRows = 0
	if err := wc.WriteFloat64("/z", data, []int{10000}, nil); err != nil {
		t.Fatal(err)
	}
	bc, _ := wc.Finalize()

	wu := NewWriter()
	wu.Compress = false
	wu.ChunkRows = 0
	if err := wu.WriteFloat64("/z", data, []int{10000}, nil); err != nil {
		t.Fatal(err)
	}
	bu, _ := wu.Finalize()
	if len(bc) >= len(bu)/10 {
		t.Fatalf("compressed %d vs raw %d: expected >10x shrink", len(bc), len(bu))
	}
}

func TestCorruptionDetected(t *testing.T) {
	w := NewWriter()
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i) * 1.1
	}
	if err := w.WriteFloat64("/d", data, []int{100}, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	// Flip a byte in the first chunk payload (just after magic).
	bad := append([]byte(nil), b...)
	bad[len(magic)+3] ^= 0xFF
	f, err := Open(bad)
	if err != nil {
		t.Fatal(err) // tree is intact; open succeeds
	}
	if _, _, err := f.Read("/d"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
}

func TestTreeCorruptionDetected(t *testing.T) {
	w := NewWriter()
	if err := w.WriteFloat64("/d", []float64{1}, []int{1}, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	bad := append([]byte(nil), b...)
	bad[len(bad)-20] ^= 0xFF // inside the JSON tree
	if _, err := Open(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open([]byte("tiny")); err == nil {
		t.Fatal("want magic error")
	}
	w := NewWriter()
	b, _ := w.Finalize()
	bad := append([]byte(nil), b...)
	copy(bad[len(bad)-4:], "XXXX")
	if _, err := Open(bad); err == nil {
		t.Fatal("want trailer error")
	}
}

func TestWriterErrors(t *testing.T) {
	w := NewWriter()
	if err := w.WriteFloat64("relative/path", nil, nil, nil); err == nil {
		t.Fatal("want absolute-path error")
	}
	if err := w.WriteFloat64("/", nil, nil, nil); err == nil {
		t.Fatal("want root-dataset error")
	}
	if err := w.WriteFloat64("/x", []float64{1, 2}, []int{3}, nil); err == nil {
		t.Fatal("want shape error")
	}
	if err := w.WriteFloat64("/ok", []float64{1}, []int{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFloat64("/ok", []float64{1}, []int{1}, nil); err == nil {
		t.Fatal("want duplicate error")
	}
	if _, err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finalize(); err == nil {
		t.Fatal("want double-finalize error")
	}
	if err := w.WriteFloat64("/late", []float64{1}, []int{1}, nil); err == nil {
		t.Fatal("want finalized error")
	}
}

func TestNotFound(t *testing.T) {
	w := NewWriter()
	b, _ := w.Finalize()
	f, _ := Open(b)
	if _, _, err := f.Read("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err=%v, want ErrNotFound", err)
	}
}

func TestEmptyDataset(t *testing.T) {
	w := NewWriter()
	if err := w.WriteFloat64("/empty", nil, []int{0, 4}, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, _ := Open(b)
	got, shape, err := f.Read("/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || shape[0] != 0 {
		t.Fatalf("got=%v shape=%v", got, shape)
	}
}

func TestMultipleDatasets(t *testing.T) {
	w := NewWriter()
	for _, name := range []string{"/a", "/b", "/c/d"} {
		if err := w.WriteFloat64(name, []float64{1, 2}, []int{2}, nil); err != nil {
			t.Fatal(err)
		}
	}
	b, _ := w.Finalize()
	f, _ := Open(b)
	if len(f.Datasets()) != 3 {
		t.Fatalf("datasets=%d", len(f.Datasets()))
	}
}

// Property: any finite float64 payload round-trips exactly through
// arbitrary chunking.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, chunk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(40) + 1
		cols := rng.Intn(5) + 1
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = rng.NormFloat64() * 1e6
		}
		w := NewWriter()
		w.ChunkRows = int(chunk)%7 + 1
		if err := w.WriteFloat64("/p", data, []int{rows, cols}, nil); err != nil {
			return false
		}
		b, err := w.Finalize()
		if err != nil {
			return false
		}
		file, err := Open(b)
		if err != nil {
			return false
		}
		got, _, err := file.Read("/p")
		if err != nil || len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		// ReadRows over a random window must agree too.
		start := rng.Intn(rows)
		count := rng.Intn(rows - start)
		win, err := file.ReadRows("/p", start, count)
		if err != nil || len(win) != count*cols {
			return false
		}
		for i := range win {
			if win[i] != data[start*cols+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteCompressed(b *testing.B) {
	data := make([]float64, 64*1024)
	for i := range data {
		data[i] = float64(i % 100)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter()
		if err := w.WriteFloat64("/d", data, []int{64, 1024}, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Finalize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCompressed(b *testing.B) {
	data := make([]float64, 64*1024)
	for i := range data {
		data[i] = float64(i % 100)
	}
	w := NewWriter()
	if err := w.WriteFloat64("/d", data, []int{64, 1024}, nil); err != nil {
		b.Fatal(err)
	}
	enc, err := w.Finalize()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Open(enc)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := f.Read("/d"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkRows ablates the chunk-size design choice: smaller chunks
// cost more per-chunk overhead on full reads but enable cheaper partial
// row reads.
func BenchmarkChunkRows(b *testing.B) {
	data := make([]float64, 512*64)
	for i := range data {
		data[i] = float64(i % 991)
	}
	for _, rows := range []int{16, 128, 512} {
		name := map[int]string{16: "c16", 128: "c128", 512: "c512"}[rows]
		b.Run(name, func(b *testing.B) {
			w := NewWriter()
			w.ChunkRows = rows
			if err := w.WriteFloat64("/d", data, []int{512, 64}, nil); err != nil {
				b.Fatal(err)
			}
			enc, err := w.Finalize()
			if err != nil {
				b.Fatal(err)
			}
			f, err := Open(enc)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A window read touching ~2 chunks at c16.
				if _, err := f.ReadRows("/d", 100, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
