// SDK acceptance tests: typed job lifecycle, wire negotiation with
// NDJSON fallback, cross-format payload equality, and transparent
// cursor resume when connections are cut mid-stream (in both formats).
package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/server"
	"repro/pkg/client"
)

func newServer(t *testing.T, opts server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

func submitDone(t *testing.T, c *client.Client, spec client.JobSpec) *client.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.WaitDone(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return done
}

func drainAll(t *testing.T, st *client.Stream) []client.BatchWire {
	t.Helper()
	var out []client.BatchWire
	for {
		b, err := st.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, *b)
	}
}

func TestClientEndToEnd(t *testing.T) {
	_, ts := newServer(t, server.Options{Workers: 2, CacheBytes: 32 << 20})
	c := client.New(ts.URL)
	ctx := context.Background()

	// Discovery: templates advertise kind + wires.
	tpls, err := c.Templates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpls) != len(core.Domains()) {
		t.Fatalf("%d templates", len(tpls))
	}
	for _, tpl := range tpls {
		if tpl.Kind == "" || !tpl.Servable {
			t.Fatalf("template %+v not discoverable", tpl)
		}
		if !slices.Equal(tpl.Wires, []string{"ndjson", "frame"}) {
			t.Fatalf("template %s wires %v", tpl.Domain, tpl.Wires)
		}
	}

	done := submitDone(t, c, client.JobSpec{Domain: core.Climate, Seed: 4, Months: 24, Lat: 16, Lon: 32})
	if done.State != client.JobDone || !done.Servable || done.Kind != "samples" {
		t.Fatalf("job %+v", done)
	}
	if !slices.Equal(done.Wires, []string{"ndjson", "frame"}) {
		t.Fatalf("job wires %v", done.Wires)
	}
	if len(done.Trajectory) == 0 {
		t.Fatal("no readiness trajectory over the SDK")
	}

	// Auto negotiation lands on frames against this server...
	auto, err := c.StreamBatches(ctx, done.ID, client.StreamOptions{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Wire() != client.WireFrame {
		t.Fatalf("auto stream negotiated %q", auto.Wire())
	}
	frames := drainAll(t, auto)

	// ...and a pinned-NDJSON stream serves the same records with the
	// same cursors.
	nd, err := c.StreamBatches(ctx, done.ID, client.StreamOptions{BatchSize: 4, Wire: client.WireNDJSON})
	if err != nil {
		t.Fatal(err)
	}
	if nd.Wire() != client.WireNDJSON {
		t.Fatalf("ndjson stream negotiated %q", nd.Wire())
	}
	lines := drainAll(t, nd)
	if len(frames) == 0 || len(frames) != len(lines) {
		t.Fatalf("%d frame batches vs %d ndjson batches", len(frames), len(lines))
	}
	for i := range frames {
		fb, _ := json.Marshal(frames[i])
		lb, _ := json.Marshal(lines[i])
		if string(fb) != string(lb) {
			t.Fatalf("batch %d differs across wires:\n frame  %s\n ndjson %s", i, fb, lb)
		}
	}

	// Cursor restart: a fresh stream from a mid-stream cursor serves
	// exactly the suffix, in frames too.
	mid := len(frames) / 2
	rest, err := c.StreamBatches(ctx, done.ID, client.StreamOptions{BatchSize: 4, Cursor: frames[mid].Cursor})
	if err != nil {
		t.Fatal(err)
	}
	suffix := drainAll(t, rest)
	if len(suffix) != len(frames)-mid-1 {
		t.Fatalf("resumed %d batches, want %d", len(suffix), len(frames)-mid-1)
	}
	for i, b := range suffix {
		if b.Cursor != frames[mid+1+i].Cursor {
			t.Fatalf("resume cursor %d: %s vs %s", i, b.Cursor, frames[mid+1+i].Cursor)
		}
	}

	// Pinned frames against a job that exists works end to end; a bad
	// job 404s through the typed error path.
	if _, err := c.Job(ctx, "job-999999"); err == nil {
		t.Fatal("missing job did not error")
	}
}

// chokeHandler aborts every /batches connection after limit bytes —
// mid-line and mid-frame cuts included — simulating flaky transport.
func chokeHandler(next http.Handler, limit int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/templates" || r.URL.Path == "/v1/jobs" || r.Method != http.MethodGet {
			next.ServeHTTP(w, r)
			return
		}
		next.ServeHTTP(&chokeWriter{ResponseWriter: w, limit: limit}, r)
	})
}

type chokeWriter struct {
	http.ResponseWriter
	n, limit int
}

func (c *chokeWriter) Write(p []byte) (int, error) {
	if c.n+len(p) > c.limit {
		if part := c.limit - c.n; part > 0 {
			_, _ = c.ResponseWriter.Write(p[:part])
		}
		if f, ok := c.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // cut the connection without a clean end
	}
	n, err := c.ResponseWriter.Write(p)
	c.n += n
	return n, err
}

func (c *chokeWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestStreamResumeOnDisconnect: with every batch connection cut after
// a few KiB, Stream.Next reconnects from the last cursor and delivers
// the exact clean-run record sequence with contiguous batch numbering
// — in both wire formats.
func TestStreamResumeOnDisconnect(t *testing.T) {
	s, err := server.New(server.Options{Workers: 2, CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	clean := httptest.NewServer(s.Handler())
	t.Cleanup(clean.Close)
	choked := httptest.NewServer(chokeHandler(s.Handler(), 4<<10))
	t.Cleanup(choked.Close)

	done := submitDone(t, client.New(clean.URL), client.JobSpec{Domain: core.Climate, Seed: 4, Months: 24, Lat: 16, Lon: 32})

	for _, wire := range domain.Wires() {
		t.Run(wire, func(t *testing.T) {
			ctx := context.Background()
			ref, err := client.New(clean.URL).StreamBatches(ctx, done.ID, client.StreamOptions{BatchSize: 1, Wire: wire})
			if err != nil {
				t.Fatal(err)
			}
			want := drainAll(t, ref)
			if len(want) < 8 {
				t.Fatalf("reference stream too small (%d batches)", len(want))
			}

			st, err := client.New(choked.URL).StreamBatches(ctx, done.ID,
				client.StreamOptions{BatchSize: 1, Wire: wire, MaxResumes: 10000})
			if err != nil {
				t.Fatal(err)
			}
			got := drainAll(t, st)
			if len(got) != len(want) {
				t.Fatalf("choked stream delivered %d batches, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i].Batch != i {
					t.Fatalf("batch numbering not contiguous after resume: %d at %d", got[i].Batch, i)
				}
				gb, _ := json.Marshal(got[i])
				wb, _ := json.Marshal(want[i])
				if string(gb) != string(wb) {
					t.Fatalf("batch %d differs after resumes:\n got  %s\n want %s", i, gb, wb)
				}
			}

			// MaxBatches is a total across resumes, not per connection:
			// even though each resumed connection restarts the server's
			// count, the stream must stop at the cap.
			cap := len(want) - 2
			capped, err := client.New(choked.URL).StreamBatches(ctx, done.ID,
				client.StreamOptions{BatchSize: 1, Wire: wire, MaxBatches: cap, MaxResumes: 10000})
			if err != nil {
				t.Fatal(err)
			}
			if got := drainAll(t, capped); len(got) != cap {
				t.Fatalf("MaxBatches=%d delivered %d batches across resumes", cap, len(got))
			}
		})
	}
}

// TestStreamCorruptFrameIsTerminal: a fully received but unparsable
// frame must surface immediately — resuming replays the same bytes,
// so retrying would hammer the server MaxResumes times for nothing.
func TestStreamCorruptFrameIsTerminal(t *testing.T) {
	var requests atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/batches", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		w.Header().Set(domain.HeaderWire, domain.WireFrame)
		w.Header().Set("Content-Type", domain.ContentTypeFrame)
		// A complete frame claiming an unknown kind: length 8, kind
		// "garbage!" — parses as a frame, fails kind resolution.
		_, _ = w.Write(append([]byte{10, 8}, []byte("garbage!\x00\x00")...))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	st, err := client.New(ts.URL).StreamBatches(context.Background(), "job-000001",
		client.StreamOptions{Wire: client.WireFrame, MaxResumes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Next()
	var cf *domain.CorruptFrameError
	if !errors.As(err, &cf) {
		t.Fatalf("corrupt frame surfaced as %v", err)
	}
	if n := requests.Load(); n != 1 {
		t.Fatalf("corrupt frame was retried: %d requests", n)
	}
}

// TestStreamServerErrorIsTerminal: an in-band server error must not be
// retried — the resume loop would hammer the same failure forever.
func TestStreamServerErrorIsTerminal(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/batches", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(domain.HeaderWire, domain.WireNDJSON)
		w.Header().Set("Content-Type", domain.ContentTypeNDJSON)
		_, _ = w.Write([]byte(`{"error":"shard vanished"}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	st, err := client.New(ts.URL).StreamBatches(context.Background(), "job-000001",
		client.StreamOptions{MaxResumes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("server error line not surfaced: %v", err)
	}
	var se *domain.StreamError
	if !errors.As(err, &se) || se.Msg != "shard vanished" {
		t.Fatalf("error %v not a StreamError", err)
	}
}
