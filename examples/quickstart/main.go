// Quickstart: raw synthetic climate data → fully AI-ready training
// batches, served. A draid server runs in-process; the pkg/client SDK
// discovers the domain templates, submits a climate job, prints the
// Table 2 readiness trajectory the pipeline walked, and streams
// training batches back over both wire formats — the negotiated binary
// frame protocol and the debuggable NDJSON fallback — proving they
// carry identical records.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/pkg/client"
)

func main() {
	log.SetFlags(0)

	// 1. Run the dataset-readiness service (in-process here; cmd/draid
	// serves the same handler over a real listener).
	srv, err := server.New(server.Options{Workers: 2, CacheBytes: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cli := client.New(ts.URL)

	// 2. Discover what the facility can prepare.
	tpls, err := cli.Templates(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("domain templates:")
	for _, tpl := range tpls {
		fmt.Printf("  %-10s kind=%-17s wires=%v  %s\n", tpl.Domain, tpl.Kind, tpl.Wires, tpl.Description)
	}

	// 3. Submit a climate job and wait for readiness.
	st, err := cli.SubmitJob(ctx, client.JobSpec{Domain: core.Climate, Name: "quickstart", Seed: 1, Months: 24, Lat: 16, Lon: 32})
	if err != nil {
		log.Fatal(err)
	}
	done, err := cli.WaitDone(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njob %s done: %d records in %d shards\n", done.ID, done.Records, done.Shards)
	fmt.Println("readiness trajectory:")
	for _, p := range done.Trajectory {
		fmt.Printf("  after %-18s (%-10s) -> %s\n", p.Stage, p.Kind, p.LevelName)
	}

	// 4. Consume the batches the way a trainer would — the SDK
	// negotiates the binary frame wire automatically.
	stream, err := cli.StreamBatches(ctx, done.ID, client.StreamOptions{BatchSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	batches, samples := 0, 0
	for {
		b, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		batches++
		samples += b.Count()
	}
	fmt.Printf("\ntrainer consumed %d batches (%d samples) over the %q wire, %d bytes\n",
		batches, samples, stream.Wire(), stream.Bytes())

	// 5. The same stream in NDJSON (curl-friendly) carries the same
	// records — frames just carry them cheaper.
	nd, err := cli.StreamBatches(ctx, done.ID, client.StreamOptions{BatchSize: 8, Wire: client.WireNDJSON})
	if err != nil {
		log.Fatal(err)
	}
	ndBatches, ndSamples := 0, 0
	for {
		b, err := nd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		ndBatches++
		ndSamples += b.Count()
	}
	if ndBatches != batches || ndSamples != samples {
		log.Fatalf("wire formats disagree: %d/%d batches, %d/%d samples", batches, ndBatches, samples, ndSamples)
	}
	fmt.Printf("NDJSON fallback streams the identical %d batches in %d bytes (%.1fx the frame size)\n",
		ndBatches, nd.Bytes(), float64(nd.Bytes())/float64(stream.Bytes()))

	// 6. Provenance: the full lineage DAG rides the API too.
	prov, err := cli.Provenance(ctx, done.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovenance document: %d bytes of lineage DAG\n", len(prov))
}
