// Command clustersmoke is the fleet end-to-end check CI runs on every
// push: it launches three real draid processes sharing one data dir,
// submits a job through every node via the pkg/client SDK, verifies the
// fleet agrees on consistent-hash ownership and that proxied streams
// match owner-direct streams byte for byte, then SIGKILLs one job's
// owner mid-stream and requires the same cursor to resume against a
// survivor until every job's stream completes. The -wire flag selects
// the stream encoding; CI runs the smoke once per wire format, so both
// the NDJSON and the binary frame path cross the proxy, survive
// failover, and resume by cursor.
//
// With -tenancy the smoke instead exercises the multi-tenant fleet:
// every node runs with a -tenants registry, and the smoke requires
// cross-tenant 403s to hold on the owner-direct, proxied, AND
// redirected paths (identity must survive fleet hops), admin tokens to
// see across tenants, and the owner's audit ledger to hold the
// submission and stream records with inclusion proofs that verify
// against its published Merkle roots.
//
// Usage:
//
//	go build -o /tmp/draid ./cmd/draid
//	go run ./cmd/clustersmoke -draid /tmp/draid -wire frame
//	go run ./cmd/clustersmoke -draid /tmp/draid -tenancy
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/domain"
	"repro/internal/ledger"
	"repro/pkg/client"
)

type node struct {
	id   string
	url  string
	cli  *client.Client
	cmd  *exec.Cmd
	dead bool
}

var (
	wire        string
	verifyTrace bool
)

// smokeTrace is the pinned trace ID for raw streams; every hop must
// echo it back exactly once (a duplicate means a proxy re-stamped it).
const smokeTrace = "clustersmoke-trace.1"

func main() {
	draid := flag.String("draid", "", "path to a built draid binary (required)")
	basePort := flag.Int("base-port", 18081, "first of three consecutive listen ports")
	keep := flag.Bool("keep", false, "keep the data dir for inspection")
	tenancy := flag.Bool("tenancy", false, "run the multi-tenant smoke instead (auth, cross-tenant 403s across proxy and redirect, audit proofs)")
	flag.StringVar(&wire, "wire", domain.WireNDJSON, "stream wire format to exercise (ndjson|frame)")
	flag.BoolVar(&verifyTrace, "verify-trace", true, "assert X-Draid-Trace IDs survive every fleet hop")
	flag.Parse()
	log.SetFlags(0)
	if *draid == "" {
		log.Fatal("clustersmoke: -draid is required")
	}
	if wire != domain.WireNDJSON && wire != domain.WireFrame {
		log.Fatalf("clustersmoke: unknown -wire %q (want ndjson|frame)", wire)
	}

	dataDir, err := os.MkdirTemp("", "clustersmoke-")
	if err != nil {
		log.Fatal(err)
	}
	if !*keep {
		defer os.RemoveAll(dataDir)
	}
	log.Printf("clustersmoke: shared data dir %s, wire %s", dataDir, wire)

	nodes := make([]*node, 3)
	var peers []string
	for i := range nodes {
		id := fmt.Sprintf("n%d", i+1)
		url := fmt.Sprintf("http://127.0.0.1:%d", *basePort+i)
		nodes[i] = &node{id: id, url: url,
			cli: client.New(url, client.WithWire(wire), client.WithTrace("smoke-"+id))}
		peers = append(peers, id+"="+url)
	}
	var tenantsPath string
	if *tenancy {
		tenantsPath = filepath.Join(dataDir, "tenants.json")
		writeTenantsFile(tenantsPath)
	}
	peerFlag := strings.Join(peers, ",")
	for i, n := range nodes {
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", *basePort+i),
			"-data-dir", dataDir,
			"-node-id", n.id,
			"-peers", peerFlag,
			"-probe-interval", "200ms",
			"-workers", "2",
		}
		if *tenancy {
			args = append(args, "-tenants", tenantsPath)
		}
		n.cmd = exec.Command(*draid, args...)
		n.cmd.Stdout = os.Stderr
		n.cmd.Stderr = os.Stderr
		if err := n.cmd.Start(); err != nil {
			log.Fatalf("clustersmoke: start %s: %v", n.id, err)
		}
	}
	defer func() {
		for _, n := range nodes {
			if !n.dead && n.cmd.Process != nil {
				_ = n.cmd.Process.Kill()
				_, _ = n.cmd.Process.Wait()
			}
		}
	}()

	for _, n := range nodes {
		waitHealthy(n)
	}
	log.Printf("clustersmoke: fleet of %d healthy", len(nodes))
	ctx := context.Background()

	if *tenancy {
		tenancySmoke(ctx, nodes)
		return
	}

	// One job submitted through each member via the SDK; completion
	// polled through the same member (routing hides where it runs).
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		cctx, cancel := context.WithTimeout(ctx, 120*time.Second)
		st, err := n.cli.SubmitJob(cctx, client.JobSpec{
			Domain: "climate", Name: fmt.Sprintf("smoke-%d", i), Seed: int64(i + 1),
		})
		if err == nil {
			st, err = n.cli.WaitDone(cctx, st.ID)
		}
		cancel()
		if err != nil {
			log.Fatalf("clustersmoke: job via %s: %v", n.id, err)
		}
		if verifyTrace && st.Trace != "smoke-"+n.id {
			log.Fatalf("clustersmoke: submission via %s surfaced trace %q, want %q",
				n.id, st.Trace, "smoke-"+n.id)
		}
		ids[i] = st.ID
		log.Printf("clustersmoke: %s done (submitted via %s, trace %s)", st.ID, n.id, st.Trace)
	}

	// Fleet-wide ownership agreement, owner-direct == proxied bytes,
	// and a validated decode of every stream in the selected wire.
	fullStreams := make(map[string][]byte, len(ids))
	decoded := make(map[string][]client.BatchWire, len(ids))
	owners := make(map[string]*node, len(ids))
	for _, id := range ids {
		owner := ""
		for _, n := range nodes {
			info, err := n.cli.ClusterInfo(ctx, id)
			if err != nil || info.Job == nil || info.Job.Owner == "" {
				log.Fatalf("clustersmoke: cluster info via %s: %v (%+v)", n.id, err, info)
			}
			if owner == "" {
				owner = info.Job.Owner
			} else if info.Job.Owner != owner {
				log.Fatalf("clustersmoke: fleet disagrees on owner of %s: %s vs %s", id, owner, info.Job.Owner)
			}
		}
		for _, n := range nodes {
			if n.id == owner {
				owners[id] = n
			}
		}
		direct := streamBytes(owners[id].url, id, "")
		for _, n := range nodes {
			if n.id == owner {
				continue
			}
			proxied := streamBytes(n.url, id, "")
			if string(proxied) != string(direct) {
				log.Fatalf("clustersmoke: %s stream of %s via %s differs from owner-direct", wire, id, n.id)
			}
		}
		fullStreams[id] = direct
		decoded[id] = streamDecoded(owners[id].cli, id, "")
		log.Printf("clustersmoke: %s owned by %s; proxied %s streams byte-identical (%d batches)",
			id, owner, wire, len(decoded[id]))
	}

	// Redirect path: a 307 hop must land on the owner with the client's
	// trace intact (Go's client re-sends custom headers on 307).
	if verifyTrace {
		var nonOwner *node
		for _, n := range nodes {
			if n.id != owners[ids[0]].id {
				nonOwner = n
				break
			}
		}
		req, err := http.NewRequest(http.MethodGet, nonOwner.url+"/v1/jobs/"+ids[0], nil)
		if err != nil {
			log.Fatalf("clustersmoke: redirect probe: %v", err)
		}
		req.Header.Set(client.TraceHeader, smokeTrace)
		req.Header.Set("X-Draid-Route", "redirect")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatalf("clustersmoke: redirect probe: %v", err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("clustersmoke: redirect probe status %d", resp.StatusCode)
		}
		if got := resp.Header.Get(client.TraceHeader); got != smokeTrace {
			log.Fatalf("clustersmoke: redirected trace %q, want %q", got, smokeTrace)
		}
		log.Printf("clustersmoke: trace IDs verified across submissions, proxied streams, and redirects")
		verifyAssembledTrace(ctx, nodes, owners[ids[0]], ids[0])
	}

	// Kill the owner of the first job mid-stream, then resume the same
	// cursor against a survivor.
	victim := owners[ids[0]]
	var survivor *node
	for _, n := range nodes {
		if n.id != victim.id {
			survivor = n
			break
		}
	}
	const prefixBatches = 2
	partial, err := survivor.cli.StreamBatches(ctx, ids[0],
		client.StreamOptions{BatchSize: 4, MaxBatches: prefixBatches, MaxResumes: -1})
	if err != nil {
		log.Fatalf("clustersmoke: partial stream: %v", err)
	}
	if _, _, _, err := partial.Drain(); err != nil {
		log.Fatalf("clustersmoke: partial stream: %v", err)
	}
	cursor := partial.Cursor()
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		log.Fatalf("clustersmoke: kill %s: %v", victim.id, err)
	}
	_, _ = victim.cmd.Process.Wait()
	victim.dead = true
	log.Printf("clustersmoke: SIGKILLed %s (owner of %s); resuming cursor %s via %s",
		victim.id, ids[0], cursor, survivor.id)

	resumed := streamDecoded(survivor.cli, ids[0], cursor)
	checkResume(decoded[ids[0]], resumed, prefixBatches, ids[0])
	log.Printf("clustersmoke: cursor resume after owner death is exact in %s wire", wire)

	// Every job — including any others the victim owned — must still
	// stream completely (and byte-identically) via the survivors.
	for _, id := range ids {
		for _, n := range nodes {
			if n.dead {
				continue
			}
			got := streamBytes(n.url, id, "")
			if string(got) != string(fullStreams[id]) {
				log.Fatalf("clustersmoke: post-kill stream of %s via %s differs (%d vs %d bytes)",
					id, n.id, len(got), len(fullStreams[id]))
			}
		}
	}
	log.Printf("clustersmoke: all %d jobs fully streamable via survivors (%s wire) — PASS", len(ids), wire)
}

// Tenancy smoke tokens — throwaway credentials for the local fleet the
// smoke itself launches.
const (
	aliceToken = "smoke-alice-token-1"
	bobToken   = "smoke-bob-token-22"
	rootToken  = "smoke-root-token-33"
)

// writeTenantsFile writes the -tenants registry for the tenancy smoke:
// two plain tenants and an admin, 0600 as the server demands.
func writeTenantsFile(path string) {
	cfg := `[
  {"id": "alice", "token": "` + aliceToken + `", "weight": 3},
  {"id": "bob", "token": "` + bobToken + `"},
  {"id": "root", "token": "` + rootToken + `", "admin": true}
]`
	if err := os.WriteFile(path, []byte(cfg), 0o600); err != nil {
		log.Fatalf("clustersmoke: write tenants file: %v", err)
	}
}

// authedStatus performs one request with a bearer token (empty sends
// none) and optional route header, draining the body and returning the
// status code. The default client follows 307s, re-sending the
// Authorization header because every hop shares a hostname.
func authedStatus(url, token, route string) int {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		log.Fatalf("clustersmoke: %s: %v", url, err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if route != "" {
		req.Header.Set("X-Draid-Route", route)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("clustersmoke: %s: %v", url, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// tenancySmoke is the -tenancy variant: a three-node authenticated
// fleet where tenant isolation must hold on every routing path and the
// audit ledger must certify what happened.
func tenancySmoke(ctx context.Context, nodes []*node) {
	alice := client.New(nodes[0].url, client.WithToken(aliceToken))
	cctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	st, err := alice.SubmitJob(cctx, client.JobSpec{Domain: "climate", Name: "tenancy-smoke", Seed: 1})
	if err != nil {
		log.Fatalf("clustersmoke: alice submit: %v", err)
	}
	if _, err := alice.WaitDone(cctx, st.ID); err != nil {
		log.Fatalf("clustersmoke: alice job: %v", err)
	}
	info, err := alice.ClusterInfo(ctx, st.ID)
	if err != nil || info.Job == nil || info.Job.Owner == "" {
		log.Fatalf("clustersmoke: cluster info: %v (%+v)", err, info)
	}
	var owner, proxy *node
	for _, n := range nodes {
		if n.id == info.Job.Owner {
			owner = n
		} else if proxy == nil {
			proxy = n
		}
	}
	if owner == nil || proxy == nil {
		log.Fatalf("clustersmoke: owner %s not in fleet", info.Job.Owner)
	}
	log.Printf("clustersmoke: tenancy job %s owned by %s; probing via proxy %s", st.ID, owner.id, proxy.id)

	// The contract, on every routing path: no credential 401s, bob's
	// credential 403s, alice's 200s. "proxy" hits a non-owner that
	// forwards to the owner (identity rides the peer hop), "redirect"
	// forces the 307 path (the client re-presents its own credential to
	// the owner).
	jobPath := "/v1/jobs/" + st.ID
	for _, probe := range []struct {
		name  string
		base  string
		route string
	}{
		{"owner-direct", owner.url, ""},
		{"proxied", proxy.url, ""},
		{"redirected", proxy.url, "redirect"},
	} {
		if got := authedStatus(probe.base+jobPath, "", probe.route); got != http.StatusUnauthorized {
			log.Fatalf("clustersmoke: %s unauthenticated read: status %d, want 401", probe.name, got)
		}
		if got := authedStatus(probe.base+jobPath, bobToken, probe.route); got != http.StatusForbidden {
			log.Fatalf("clustersmoke: %s cross-tenant read as bob: status %d, want 403", probe.name, got)
		}
		if got := authedStatus(probe.base+jobPath+"/batches?max_batches=1", bobToken, probe.route); got != http.StatusForbidden {
			log.Fatalf("clustersmoke: %s cross-tenant stream as bob: status %d, want 403", probe.name, got)
		}
		if got := authedStatus(probe.base+jobPath, aliceToken, probe.route); got != http.StatusOK {
			log.Fatalf("clustersmoke: %s owner-tenant read as alice: status %d, want 200", probe.name, got)
		}
	}
	log.Printf("clustersmoke: cross-tenant 403s hold owner-direct, proxied, and redirected")

	// Alice's stream flows end to end through the proxy with her token
	// riding every hop (including resumes).
	aliceViaProxy := client.New(proxy.url, client.WithToken(aliceToken))
	stream, err := aliceViaProxy.StreamBatches(ctx, st.ID, client.StreamOptions{BatchSize: 4, MaxResumes: -1})
	if err != nil {
		log.Fatalf("clustersmoke: alice proxied stream: %v", err)
	}
	batches, _, _, err := stream.Drain()
	if err != nil || batches == 0 {
		log.Fatalf("clustersmoke: alice proxied stream: %d batches, err %v", batches, err)
	}
	log.Printf("clustersmoke: alice streamed %d batches through the proxy", batches)

	// Listings scope: bob sees nothing anywhere, the admin sees alice's
	// job from every node (the cluster-merged view carries tenant
	// ownership across the fleet).
	for _, n := range nodes {
		bobJobs, err := client.New(n.url, client.WithToken(bobToken)).Jobs(ctx)
		if err != nil || len(bobJobs) != 0 {
			log.Fatalf("clustersmoke: bob list via %s: %d jobs, err %v (want 0)", n.id, len(bobJobs), err)
		}
		rootJobs, err := client.New(n.url, client.WithToken(rootToken)).Jobs(ctx)
		if err != nil || len(rootJobs) == 0 {
			log.Fatalf("clustersmoke: admin list via %s: %d jobs, err %v (want >=1)", n.id, len(rootJobs), err)
		}
	}
	log.Printf("clustersmoke: listings scoped (bob empty, admin cluster-wide)")

	// The owner's audit ledger certifies the submission and the stream
	// open, each with an inclusion proof that verifies against the
	// published Merkle roots; bob cannot prove alice's records.
	rootCli := client.New(owner.url, client.WithToken(rootToken))
	sub := findAuditSmoke(ctx, rootCli, ledger.TypeSubmit, st.ID)
	str := findAuditSmoke(ctx, rootCli, ledger.TypeStream, st.ID)
	for _, rec := range []*client.AuditProof{sub, str} {
		if rec.Record.Tenant != "alice" {
			log.Fatalf("clustersmoke: audit %s record tenant %q, want alice", rec.Record.Type, rec.Record.Tenant)
		}
	}
	proofURL := fmt.Sprintf("%s/v1/audit/proof?seq=%d", owner.url, sub.Record.Seq)
	if got := authedStatus(proofURL, bobToken, ""); got != http.StatusForbidden {
		log.Fatalf("clustersmoke: bob proving alice's audit record: status %d, want 403", got)
	}
	log.Printf("clustersmoke: audit trail verified on %s (submit seq %d, stream seq %d) — tenancy PASS",
		owner.id, sub.Record.Seq, str.Record.Seq)
}

// findAuditSmoke scans the node's audit ledger through the SDK for the
// first record of the given type and job, verifying every inclusion
// proof against the published roots on the way. Polls briefly: audit
// appends are asynchronous with respect to the HTTP responses that
// caused them.
func findAuditSmoke(ctx context.Context, cli *client.Client, typ, job string) *client.AuditProof {
	deadline := time.Now().Add(10 * time.Second)
	for {
		roots, err := cli.AuditRoots(ctx)
		if err != nil {
			log.Fatalf("clustersmoke: audit roots: %v", err)
		}
		byBatch := make(map[int]client.AuditBatchRoot, len(roots.Roots))
		for _, r := range roots.Roots {
			byBatch[r.Batch] = r
		}
		for seq := uint64(1); seq <= roots.Records; seq++ {
			proof, err := cli.AuditProof(ctx, seq)
			if err != nil {
				log.Fatalf("clustersmoke: audit proof seq %d: %v", seq, err)
			}
			if err := proof.Verify(); err != nil {
				log.Fatalf("clustersmoke: audit proof seq %d: %v", seq, err)
			}
			if root, ok := byBatch[proof.Batch]; !ok || root.Root != proof.Root {
				log.Fatalf("clustersmoke: audit proof seq %d: root %s not among published roots", seq, proof.Root)
			}
			if proof.Record.Type == typ && proof.Record.Job == job {
				return proof
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("clustersmoke: no %s audit record for job %s among %d records", typ, job, roots.Records)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// verifyAssembledTrace streams one job through a non-owner node under
// a fresh pinned trace ID, then fetches the fleet-assembled span tree
// from a third node and requires (a) spans from both the proxying node
// and the owner under the one trace ID, and (b) the owner's server
// span to be parented under the proxy's client span — the cross-node
// propagation contract, exercised against real processes.
func verifyAssembledTrace(ctx context.Context, nodes []*node, owner *node, jobID string) {
	const spanTrace = "clustersmoke-span.1"
	var proxy, third *node
	for _, n := range nodes {
		if n.id == owner.id {
			continue
		}
		if proxy == nil {
			proxy = n
		} else if third == nil {
			third = n
		}
	}
	if third == nil {
		third = owner // 2-node fleets: ask the owner instead
	}
	req, err := http.NewRequest(http.MethodGet, proxy.url+"/v1/jobs/"+jobID+"/batches?batch_size=4", nil)
	if err != nil {
		log.Fatalf("clustersmoke: trace stream: %v", err)
	}
	if wire == domain.WireFrame {
		req.Header.Set("Accept", domain.ContentTypeFrame)
	}
	req.Header.Set(client.TraceHeader, spanTrace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("clustersmoke: trace stream: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("clustersmoke: trace stream status %d", resp.StatusCode)
	}

	// The proxy's root span records just after the response completes —
	// poll briefly rather than assuming perfect ordering.
	var view *client.TraceView
	deadline := time.Now().Add(5 * time.Second)
	for {
		view, err = third.cli.Trace(ctx, spanTrace)
		if err == nil && spanNodes(view)[proxy.id] && spanNodes(view)[owner.id] {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("clustersmoke: assembled trace %s missing spans (err %v, view %+v): want nodes %s and %s",
				spanTrace, err, view, proxy.id, owner.id)
		}
		time.Sleep(100 * time.Millisecond)
	}
	spans := make(map[string]client.Span, len(view.Spans))
	for _, sp := range view.Spans {
		if sp.TraceID != spanTrace {
			log.Fatalf("clustersmoke: assembled trace mixes IDs: %s in view of %s", sp.TraceID, spanTrace)
		}
		spans[sp.SpanID] = sp
	}
	// The owner's server span must hang off the proxy's client span,
	// and every resolvable child must nest inside its parent.
	linked := false
	for _, sp := range view.Spans {
		if sp.Node == owner.id && sp.Name == "http.request" {
			if p, ok := spans[sp.Parent]; ok && p.Node == proxy.id && p.Name == "proxy.forward" {
				linked = true
			}
		}
		if p, ok := spans[sp.Parent]; ok {
			if sp.Start.Before(p.Start) || sp.End.After(p.End) {
				log.Fatalf("clustersmoke: span %s [%s] escapes its parent %s [%s]",
					sp.Name, sp.Node, p.Name, p.Node)
			}
		}
	}
	if !linked {
		log.Fatalf("clustersmoke: owner %s server span not parented under proxy %s client span:\n%s",
			owner.id, proxy.id, view.RenderTree())
	}
	log.Printf("clustersmoke: assembled trace verified via %s (%d spans across %d nodes):\n%s",
		third.id, len(view.Spans), len(spanNodes(view)), view.RenderTree())
}

// spanNodes is the set of fleet node IDs appearing in a trace view.
func spanNodes(view *client.TraceView) map[string]bool {
	out := make(map[string]bool)
	if view == nil {
		return out
	}
	for _, sp := range view.Spans {
		out[sp.Node] = true
	}
	return out
}

func waitHealthy(n *node) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(n.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("clustersmoke: %s not healthy after 15s", n.id)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// streamBytes fetches one raw stream body in the selected wire — the
// byte-level transparency check that the SDK's decoder sits above.
func streamBytes(baseURL, jobID, cursor string) []byte {
	url := baseURL + "/v1/jobs/" + jobID + "/batches?batch_size=4"
	if cursor != "" {
		url += "&cursor=" + cursor
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		log.Fatalf("clustersmoke: stream %s: %v", jobID, err)
	}
	if wire == domain.WireFrame {
		req.Header.Set("Accept", domain.ContentTypeFrame)
	}
	req.Header.Set(client.TraceHeader, smokeTrace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("clustersmoke: stream %s: %v", jobID, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("clustersmoke: stream %s: %v", jobID, err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("clustersmoke: stream %s: status %d: %s", jobID, resp.StatusCode, body)
	}
	if got := resp.Header.Get(domain.HeaderWire); got != wire {
		log.Fatalf("clustersmoke: stream %s negotiated wire %q, want %q", jobID, got, wire)
	}
	if verifyTrace {
		if got := resp.Header.Values(client.TraceHeader); len(got) != 1 || got[0] != smokeTrace {
			log.Fatalf("clustersmoke: stream %s via %s returned trace header %v, want exactly one %q",
				jobID, baseURL, got, smokeTrace)
		}
	}
	return body
}

// streamDecoded drains one job's stream through the SDK, validating
// every batch (an in-band error fails the smoke).
func streamDecoded(cli *client.Client, jobID, cursor string) []client.BatchWire {
	st, err := cli.StreamBatches(context.Background(), jobID,
		client.StreamOptions{BatchSize: 4, Cursor: cursor, MaxResumes: -1})
	if err != nil {
		log.Fatalf("clustersmoke: stream %s: %v", jobID, err)
	}
	var out []client.BatchWire
	for {
		b, err := st.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			log.Fatalf("clustersmoke: stream %s: %v", jobID, err)
		}
		out = append(out, *b)
	}
}

// checkResume verifies prefix batches of the original stream plus the
// renumbered resumed stream reproduce the original record-for-record.
func checkResume(full, resumed []client.BatchWire, prefixBatches int, jobID string) {
	if len(full) <= prefixBatches {
		log.Fatalf("clustersmoke: %s too small to test resume (%d batches)", jobID, len(full))
	}
	if len(resumed) != len(full)-prefixBatches {
		log.Fatalf("clustersmoke: resume of %s yields %d batches, want %d",
			jobID, len(resumed), len(full)-prefixBatches)
	}
	for i, b := range resumed {
		b.Batch += prefixBatches
		got, _ := json.Marshal(&b)
		want, _ := json.Marshal(&full[prefixBatches+i])
		if string(got) != string(want) {
			log.Fatalf("clustersmoke: batch %d of %s differs after failover:\n got  %s\n want %s",
				prefixBatches+i, jobID, got, want)
		}
	}
}
