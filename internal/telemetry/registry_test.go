package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("draid_things_total", "Things.", "kind")
	c.With("a").Inc()
	c.With("a").Add(2)
	c.With("b").Add(0.5)
	if got := c.With("a").Value(); got != 3 {
		t.Fatalf("counter a = %v, want 3", got)
	}
	g := r.Gauge1("draid_level", "Level.")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE draid_things_total counter",
		`draid_things_total{kind="a"} 3`,
		`draid_things_total{kind="b"} 0.5`,
		"draid_level 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative counter add")
		}
	}()
	NewRegistry().Counter1("draid_x_total", "x").Add(-1)
}

func TestRegisterSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("draid_x_total", "x", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on schema mismatch")
		}
	}()
	r.Counter("draid_x_total", "x", "b")
}

func TestRegisterSameSchemaIsFetch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("draid_x_total", "x", "k")
	b := r.Counter("draid_x_total", "x", "k")
	a.With("v").Inc()
	if got := b.With("v").Value(); got != 1 {
		t.Fatalf("re-registration did not share state: %v", got)
	}
}

func TestHistogramExpositionIsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("draid_lat_seconds", "Latency.", []float64{0.01, 0.1, 1}, "op")
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.With("read").Observe(v)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`draid_lat_seconds_bucket{op="read",le="0.01"} 1`,
		`draid_lat_seconds_bucket{op="read",le="0.1"} 2`,
		`draid_lat_seconds_bucket{op="read",le="1"} 3`,
		`draid_lat_seconds_bucket{op="read",le="+Inf"} 4`,
		`draid_lat_seconds_count{op="read"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := h.With("read").Sum(); math.Abs(got-5.555) > 1e-9 {
		t.Errorf("sum = %v, want 5.555", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("draid_q_seconds", "q", []float64{0.1, 0.2, 0.4, 0.8}).With()
	// 100 observations spread evenly into the 0–0.1 bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 0.1 {
		t.Errorf("p50 = %v, want in (0, 0.1]", q)
	}
	// Push the tail into the 0.2–0.4 bucket: p99 should land there.
	for i := 0; i < 100; i++ {
		h.Observe(0.3)
	}
	if q := h.Quantile(0.99); q <= 0.2 || q > 0.4 {
		t.Errorf("p99 = %v, want in (0.2, 0.4]", q)
	}
	var empty Histogram
	if q := (&empty).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		`plain`:              `plain`,
		`with"quote`:         `with\"quote`,
		`back\slash`:         `back\\slash`,
		"new\nline":          `new\nline`,
		"tab\tstays":         "tab\tstays", // tabs are legal raw in label values
		"utf8 héllo":         "utf8 héllo", // NOT escaped — %q would have mangled this
		`all"three\n` + "\n": `all\"three\\n\n`,
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExpositionRoundTripsThroughStrictParser(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("draid_stage_seconds_total", "Stage time.", "stage")
	c.With(`job:"climate"`).Add(1.5)
	c.With("a\\b\nc").Inc()
	r.Gauge1("draid_jobs_queued", "Queued.").Set(3)
	h := r.Histogram("draid_req_seconds", "Req.", []float64{0.001, 1}, "route", "code")
	h.With("/v1/jobs", "200").Observe(0.5)
	r.GaugeFunc("draid_goroutines", "Goroutines.", func() float64 { return 42 })

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	series, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse of own exposition: %v\n%s", err, buf.String())
	}
	byKey := map[string]float64{}
	for _, s := range series {
		byKey[s.Name+"{"+s.LabelString()+"}"] = s.Value
	}
	if v := byKey[`draid_stage_seconds_total{stage="job:\"climate\""}`]; v != 1.5 {
		t.Errorf("escaped label round-trip: got %v, want 1.5 (have %v)", v, byKey)
	}
	if v := byKey[`draid_goroutines{}`]; v != 42 {
		t.Errorf("gauge func = %v, want 42", v)
	}
}

func TestConcurrentUseAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("draid_ops_total", "ops", "kind")
	h := r.Histogram("draid_op_seconds", "t", nil, "kind")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kind := string(rune('a' + i%4))
			for j := 0; j < 1000; j++ {
				c.With(kind).Inc()
				h.With(kind).Observe(float64(j) / 1000)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var buf bytes.Buffer
				r.WritePrometheus(&buf)
				if _, err := ParseText(&buf); err != nil {
					t.Errorf("mid-flight scrape invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var total float64
	for _, k := range []string{"a", "b", "c", "d"} {
		total += c.With(k).Value()
	}
	if total != 8000 {
		t.Fatalf("lost updates: total = %v, want 8000", total)
	}
}

func TestFormatValueIntegersStayIntegers(t *testing.T) {
	// serve_test.go scrapes counters with Sscanf("%d") — integral values
	// must render without exponent or decimal point.
	cases := map[float64]string{
		0: "0", 2: "2", 1048576: "1048576", 2.5: "2.5",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
