// Client: typed access to a draid server (or fleet — any member can be
// the base URL; routing is the server's job).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// TraceHeader is the HTTP header carrying the request trace ID — on
// requests to inherit a caller's trace, on responses to report the ID
// the fleet actually logged under.
const TraceHeader = telemetry.TraceHeader

// Client talks to one draid base URL. Create with New; the zero value
// is not usable.
type Client struct {
	base  string
	httpc *http.Client
	wire  string
	poll  time.Duration
	trace string
	token string
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles). The default is http.DefaultClient.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithWire pins the default wire format for StreamBatches: WireAuto
// (default), WireNDJSON, or WireFrame.
func WithWire(wire string) Option { return func(c *Client) { c.wire = wire } }

// WithPollInterval sets WaitDone's polling cadence (default 10ms —
// tuned for local servers; raise it for remote ones).
func WithPollInterval(d time.Duration) Option { return func(c *Client) { c.poll = d } }

// WithTrace pins every request's trace ID — for callers already inside
// a traced operation (a training run, a workflow step) who want the
// whole draid interaction filed under their ID. Without it each request
// gets its own fresh trace ID. Invalid IDs (empty, too long, characters
// outside [0-9A-Za-z._-]) are ignored.
func WithTrace(trace string) Option {
	return func(c *Client) {
		if telemetry.ValidTraceID(trace) {
			c.trace = trace
		}
	}
}

// WithToken attaches a tenant bearer token: every request (including
// batch-stream reconnects after a resume) carries it as
// "Authorization: Bearer <token>". Required against servers started
// with -tenants; ignored by open servers.
func WithToken(token string) Option { return func(c *Client) { c.token = token } }

// newTrace is the trace ID for one request: the pinned WithTrace ID or
// a fresh one.
func (c *Client) newTrace() string {
	if c.trace != "" {
		return c.trace
	}
	return telemetry.NewTraceID()
}

// authorize stamps the bearer token on a request (no-op without one).
func (c *Client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

// New returns a client for the draid server at baseURL.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		httpc: http.DefaultClient,
		wire:  WireAuto,
		poll:  10 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL reports the server this client targets.
func (c *Client) BaseURL() string { return c.base }

// apiError decodes the server's {"error": ...} body.
func apiError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return fmt.Errorf("draid: %s (status %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("draid: status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	_, err := c.getJSONTraced(ctx, path, out)
	return err
}

// getJSONTraced additionally reports the trace ID the server answered
// under, so status-shaped results can surface it.
func (c *Client) getJSONTraced(ctx context.Context, path string, out any) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return "", err
	}
	req.Header.Set(TraceHeader, c.newTrace())
	c.authorize(req)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp)
	}
	return resp.Header.Get(TraceHeader), json.NewDecoder(resp.Body).Decode(out)
}

// Templates lists the server's domain templates with their wire
// discovery fields.
func (c *Client) Templates(ctx context.Context) ([]TemplateInfo, error) {
	var out []TemplateInfo
	if err := c.getJSON(ctx, "/v1/templates", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitJob submits a pipeline job and returns its accepted status
// (state "queued"). The job runs asynchronously; follow it with Job or
// WaitDone.
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, c.newTrace())
	c.authorize(req)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	// Surface the trace the fleet filed the submission under. On the
	// redirect path Go re-sends X-Draid-Trace to the owner (it is not a
	// sensitive header), so the response echoes one end-to-end ID.
	st.Trace = resp.Header.Get(TraceHeader)
	return &st, nil
}

// Events fetches a job's lifecycle timeline — every state transition
// with its timestamp, fleet node, and trace ID, including transitions
// from before a server restart (replayed from the job log).
func (c *Client) Events(ctx context.Context, id string) ([]JobEvent, error) {
	var out []JobEvent
	if err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id)+"/events", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Job fetches one job's status. Trace carries the ID this poll was
// answered under — the pinned WithTrace ID, or a per-request one.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	trace, err := c.getJSONTraced(ctx, "/v1/jobs/"+url.PathEscape(id), &st)
	if err != nil {
		return nil, err
	}
	st.Trace = trace
	return &st, nil
}

// Jobs lists jobs. In a fleet the view is cluster-merged unless the
// server is asked otherwise.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.getJSON(ctx, "/v1/jobs", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitDone polls a job until it completes, returning its final status.
// A failed job is an error carrying the job's message; bound the wait
// with the context's deadline.
func (c *Client) WaitDone(ctx context.Context, id string) (*JobStatus, error) {
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case JobDone:
			return st, nil
		case JobFailed:
			return st, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("job %s still %s: %w", id, st.State, ctx.Err())
		case <-time.After(c.poll):
		}
	}
}

// Provenance fetches a job's lineage DAG as raw JSON.
func (c *Client) Provenance(ctx context.Context, id string) (json.RawMessage, error) {
	var out json.RawMessage
	if err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id)+"/provenance", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// AuditRoots fetches the serving node's published Merkle batch roots
// from its audit ledger. Errors when the server runs without a data
// directory (no ledger).
func (c *Client) AuditRoots(ctx context.Context) (*AuditRoots, error) {
	var out AuditRoots
	if err := c.getJSON(ctx, "/v1/audit/roots", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AuditProof fetches the Merkle inclusion proof for one audit record
// (seq is 1-based). Call Verify on the result and compare its Root
// against an AuditRoots entry fetched separately — that comparison is
// what makes the audit independent of the node being audited.
func (c *Client) AuditProof(ctx context.Context, seq uint64) (*AuditProof, error) {
	var out AuditProof
	if err := c.getJSON(ctx, "/v1/audit/proof?seq="+strconv.FormatUint(seq, 10), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterInfo reports fleet membership. jobID non-empty additionally
// resolves that job's ring owner.
func (c *Client) ClusterInfo(ctx context.Context, jobID string) (*ClusterInfo, error) {
	path := "/v1/cluster"
	if jobID != "" {
		path += "?job=" + url.QueryEscape(jobID)
	}
	var out ClusterInfo
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
