// Command benchreport regenerates every paper artifact from running code:
// Figure 1 (the raw→AI-ready flow), Table 1 (the four domain archetype
// pipelines), Table 2 (the maturity matrix), and the quantitative claims
// C1 (parallel I/O scaling), C2 (curation-time share), and C3 (iterative
// feedback). EXPERIMENTS.md records paper-vs-measured for each.
//
// The serve experiment benchmarks the draid serving tier (N concurrent
// clients streaming batches over HTTP) and writes its result to
// BENCH_serve.json alongside the console report, so serving throughput
// is tracked the same way as the pipeline benchmarks. With -compare it
// also gates CI: the fresh run is compared against a committed
// baseline BENCH_serve.json and the process exits non-zero when serve
// throughput regressed more than -compare-threshold.
//
// Usage:
//
//	benchreport               # run everything
//	benchreport -exp table1   # one experiment: fig1|table1|table2|scaling|curation|feedback|serve
//	benchreport -exp serve -compare BENCH_serve.json   # regression gate
//	benchreport -exp trace -trace-server http://host:8080   # dump a live server's slowest trace
//
// The trace experiment is the odd one out: it needs a running draid
// (-trace-server) instead of an in-process fixture, so it never runs
// under -exp all. It fetches the fleet-assembled span tree for
// -trace-id (default: the slowest trace the server lists) and prints
// it as an indented tree — the "where did the time go" companion to
// the throughput numbers the other experiments report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"maps"
	"os"
	"slices"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/ledger"
	"repro/internal/server"
	"repro/pkg/client"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig1|table1|table2|scaling|curation|feedback|serve|cluster|ledger")
	seed := flag.Int64("seed", 1, "experiment seed")
	scaleMB := flag.Int("scale-mb", 16, "C1: megabytes to shard")
	shots := flag.Int("curation-shots", 8, "C2: shots in the curation comparison")
	serveClients := flag.Int("serve-clients", 8, "serve: concurrent streaming clients")
	servePasses := flag.Int("serve-passes", 2, "serve: streaming passes per client")
	serveJSON := flag.String("serve-json", "BENCH_serve.json", "serve: result file (empty disables)")
	compare := flag.String("compare", "", "serve: baseline BENCH_serve.json to gate against (empty disables)")
	compareThreshold := flag.Float64("compare-threshold", 0.20, "serve: max tolerated fractional fs/mem-ratio regression")
	clusterNodes := flag.Int("cluster-nodes", 3, "cluster: fleet size")
	clusterJobs := flag.Int("cluster-jobs", 6, "cluster: jobs spread across the fleet")
	clusterClients := flag.Int("cluster-clients", 8, "cluster: concurrent streaming clients")
	clusterPasses := flag.Int("cluster-passes", 2, "cluster: streaming passes per client")
	clusterBackend := flag.String("cluster-backend", "fs", "cluster: shared shard backend (fs|parfs)")
	clusterJSON := flag.String("cluster-json", "BENCH_cluster.json", "cluster: result file (empty disables)")
	ledgerRecords := flag.Int("ledger-records", 2000, "ledger: audit records appended per mode")
	ledgerAppenders := flag.Int("ledger-appenders", 64, "ledger: concurrent appender goroutines (group commit only coalesces concurrent arrivals)")
	ledgerBatch := flag.Int("ledger-batch", 64, "ledger: Merkle batch size")
	ledgerJSON := flag.String("ledger-json", "BENCH_ledger.json", "ledger: result file (empty disables)")
	ledgerCompare := flag.String("ledger-compare", "", "ledger: baseline BENCH_ledger.json to gate against (empty disables)")
	traceServer := flag.String("trace-server", "http://localhost:8080", "trace: base URL of a running draid (any fleet member)")
	traceID := flag.String("trace-id", "", "trace: trace ID to dump (empty picks the server's slowest listed trace)")
	flag.Parse()
	log.SetFlags(0)

	if *exp == "trace" {
		if err := dumpTrace(*traceServer, *traceID); err != nil {
			log.Fatalf("benchreport trace: %v", err)
		}
		return
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("benchreport %s: %v", name, err)
		}
		fmt.Println()
	}

	run("fig1", func() error {
		res, err := experiments.RunFig1(24, 16, 32, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("table1", func() error {
		rows, err := experiments.RunTable1(*seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
		return nil
	})

	run("table2", func() error {
		res, err := experiments.RunTable2()
		if err != nil {
			return err
		}
		fmt.Printf("Table 2 reproduction — maturity matrix: %d populated cells, %d grey (N/A) cells, monotone=%t\n",
			res.PopulatedCells, res.GreyCells, res.Monotone)
		fmt.Println("Trajectory of a dataset advanced level by level (final state):")
		fmt.Print(res.Rendered[len(res.Rendered)-1])
		return nil
	})

	run("scaling", func() error {
		points, err := experiments.RunScaling(*scaleMB, []int{1, 2, 4, 8, 16}, 8)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScaling(points, *scaleMB, 8))
		return nil
	})

	run("curation", func() error {
		res, err := experiments.RunCuration(*shots, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("feedback", func() error {
		res, err := experiments.RunFeedback(400, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("serve", func() error {
		rep, err := server.RunServeComparison(server.ServeBenchConfig{
			Clients: *serveClients, BatchSize: 16, Passes: *servePasses,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep.Render())
		if *serveJSON != "" {
			b, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*serveJSON, append(b, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *serveJSON)
		}
		if *compare != "" {
			return compareServe(rep, *compare, *compareThreshold)
		}
		return nil
	})

	run("cluster", func() error {
		res, err := server.RunClusterBenchmark(server.ClusterBenchConfig{
			Nodes: *clusterNodes, Jobs: *clusterJobs, Clients: *clusterClients,
			Passes: *clusterPasses, Backend: *clusterBackend,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if *clusterJSON != "" {
			b, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*clusterJSON, append(b, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *clusterJSON)
		}
		return nil
	})

	run("ledger", func() error {
		rep, err := ledger.RunLedgerBenchmark(ledger.BenchConfig{
			Records: *ledgerRecords, Appenders: *ledgerAppenders, BatchSize: *ledgerBatch,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep.Render())
		if *ledgerJSON != "" {
			b, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*ledgerJSON, append(b, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *ledgerJSON)
		}
		if *ledgerCompare != "" {
			return compareLedger(rep, *ledgerCompare, *compareThreshold)
		}
		return nil
	})

	known := []string{"fig1", "table1", "table2", "scaling", "curation", "feedback", "serve", "cluster", "ledger"}
	if *exp != "all" && !slices.Contains(known, *exp) {
		log.Fatalf("benchreport: unknown experiment %q (want all|%s|trace)", *exp, strings.Join(known, "|"))
	}
}

// dumpTrace prints the fleet-assembled span tree for one trace from a
// live server: the named ID, or — when none is given — the slowest
// trace the server currently lists, preferring notable (tail-sampled)
// ones since those are the traces worth a human's attention.
func dumpTrace(baseURL, id string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cli := client.New(baseURL)
	if id == "" {
		sums, err := cli.Traces(ctx, client.TraceQuery{})
		if err != nil {
			return fmt.Errorf("list traces on %s: %w", baseURL, err)
		}
		if len(sums) == 0 {
			return fmt.Errorf("%s lists no traces yet — send it a request first", baseURL)
		}
		best := sums[0]
		for _, ts := range sums[1:] {
			if (ts.Notable && !best.Notable) ||
				(ts.Notable == best.Notable && ts.DurationMs > best.DurationMs) {
				best = ts
			}
		}
		id = best.TraceID
		fmt.Printf("picked %s: root %s on %s, %.2fms, notable=%t (of %d listed)\n",
			id, best.Root, best.Node, best.DurationMs, best.Notable, len(sums))
	}
	view, err := cli.Trace(ctx, id)
	if err != nil {
		return fmt.Errorf("fetch trace %s: %w", id, err)
	}
	fmt.Print(view.RenderTree())
	return nil
}

// compareServe gates the durable-serving cost against a committed
// baseline using the same-run fs/mem throughput ratio: both sides of
// the ratio are measured on the same machine in the same process, so
// the gate tracks what the code does to the durable path rather than
// how the CI runner compares to whoever produced the baseline. A fresh
// ratio more than threshold below the baseline's fails the process;
// improvements always pass.
func compareServe(cur *server.ServeBenchReport, baselinePath string, threshold float64) error {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var base server.ServeBenchReport
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("compare: decode %s: %w", baselinePath, err)
	}
	if base.FSOverMem <= 0 {
		return fmt.Errorf("compare: baseline %s has no fs/mem ratio — regenerate it with -exp serve", baselinePath)
	}
	if cur.FSOverMem <= 0 {
		return fmt.Errorf("compare: current run produced no fs/mem ratio")
	}
	// The durable path cannot genuinely outrun the in-memory one; a
	// baseline ratio above 1.0 is a lucky draw, and gating against it
	// would charge that luck to every future run. Cap at parity.
	baseRatio := base.FSOverMem
	if baseRatio > 1 {
		baseRatio = 1
	}
	gates := []ratioGate{{
		dim:  "fs_over_mem",
		what: "durable serve path (fs/mem throughput)",
		cur:  cur.FSOverMem, base: baseRatio,
	}}
	// The remaining dimensions gate only once the baseline carries them,
	// so older baselines keep passing until regenerated. A baseline that
	// has a dimension the current run failed to produce is itself a
	// failure — a silently vanished dimension is a regression.
	if base.FrameCached != nil && base.FrameCached.CachedOverFrame > 0 {
		if cur.FrameCached == nil || cur.FrameCached.CachedOverFrame <= 0 {
			return fmt.Errorf("compare: baseline %s carries frame_cached (%.3f) but the current run produced no frame_cached ratio",
				baselinePath, base.FrameCached.CachedOverFrame)
		}
		gates = append(gates, ratioGate{
			dim:  "frame_cached",
			what: "encoded-frame cache win (cached/encode throughput)",
			cur:  cur.FrameCached.CachedOverFrame, base: base.FrameCached.CachedOverFrame,
		})
	}
	for _, dom := range slices.Sorted(maps.Keys(base.FrameDisk)) {
		bfd := base.FrameDisk[dom]
		if bfd == nil || bfd.DiskOverEncode <= 0 {
			continue
		}
		cfd := cur.FrameDisk[dom]
		if cfd == nil || cfd.DiskOverEncode <= 0 {
			return fmt.Errorf("compare: baseline %s carries frame_disk[%s] (%.3f) but the current run produced no frame_disk ratio for %s",
				baselinePath, dom, bfd.DiskOverEncode, dom)
		}
		gates = append(gates, ratioGate{
			dim:  "frame_disk[" + dom + "]",
			what: "frame sidecar disk tier win (" + dom + " disk/encode throughput)",
			cur:  cfd.DiskOverEncode, base: bfd.DiskOverEncode,
		})
	}
	var failures []string
	for _, g := range gates {
		delta := g.cur/g.base - 1
		fmt.Printf("serve %-22s vs %s: %.3f now, %.3f baseline — %+.1f%%\n",
			g.dim, baselinePath, g.cur, g.base, delta*100)
		if delta < -threshold {
			failures = append(failures, fmt.Sprintf(
				"%s: %s regressed %.1f%% — %.3f now vs %.3f baseline (budget %.0f%%)",
				g.dim, g.what, -delta*100, g.cur, g.base, threshold*100))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("compare: %d dimension(s) breached the gate:\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// compareLedger gates the audit ledger's group-commit win against a
// committed baseline, by the same same-run-ratio logic as compareServe:
// both sides of batched/direct are measured in one process on one
// machine, so the gate tracks what the code does to the append path. A
// fresh ratio more than threshold below the baseline's fails the
// process; improvements always pass.
func compareLedger(cur *ledger.BenchReport, baselinePath string, threshold float64) error {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var base ledger.BenchReport
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("compare: decode %s: %w", baselinePath, err)
	}
	if base.BatchedOverDirect <= 0 {
		return fmt.Errorf("compare: baseline %s has no batched/direct ratio — regenerate it with -exp ledger", baselinePath)
	}
	if cur.BatchedOverDirect <= 0 {
		return fmt.Errorf("compare: current run produced no batched/direct ratio")
	}
	g := ratioGate{
		dim:  "batched_over_direct",
		what: "audit ledger group-commit win (batched/direct append throughput)",
		cur:  cur.BatchedOverDirect, base: base.BatchedOverDirect,
	}
	delta := g.cur/g.base - 1
	fmt.Printf("ledger %-20s vs %s: %.3f now, %.3f baseline — %+.1f%%\n",
		g.dim, baselinePath, g.cur, g.base, delta*100)
	if delta < -threshold {
		return fmt.Errorf("compare: %s: %s regressed %.1f%% — %.3f now vs %.3f baseline (budget %.0f%%)",
			g.dim, g.what, -delta*100, g.cur, g.base, threshold*100)
	}
	return nil
}

// ratioGate is one gated dimension of the serve report: a same-run,
// same-machine throughput ratio whose fresh value must not fall more
// than the threshold below its (possibly capped) baseline value.
type ratioGate struct {
	dim       string // dimension name, as it appears in BENCH_serve.json
	what      string // what a regression on this dimension means
	cur, base float64
}
