package server

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardCacheDropPrefixDuringLoad pins the eviction-vs-load race: a
// DropPrefix that runs while a matching load is in flight must prevent
// that load's completion from re-inserting the dropped job's data. The
// load is gated on a channel so the interleaving is deterministic.
func TestShardCacheDropPrefixDuringLoad(t *testing.T) {
	c := NewShardCache[[]any](1 << 20)

	started := make(chan struct{})
	release := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		_, err := c.Get("job1/shard-0", func() ([]any, int64, error) {
			close(started)
			<-release
			return []any{"deleted-job-data"}, 10, nil
		})
		got <- err
	}()

	<-started
	c.DropPrefix("job1/")
	close(release)
	if err := <-got; err != nil {
		t.Fatalf("Get: %v", err)
	}

	cs := c.Stats()
	if cs.Entries != 0 {
		t.Fatalf("load completed after DropPrefix resurrected the entry: %+v", cs)
	}

	// A load that starts after the DropPrefix sees the new generation and
	// must insert normally.
	if _, err := c.Get("job1/shard-0", func() ([]any, int64, error) {
		return []any{"fresh"}, 10, nil
	}); err != nil {
		t.Fatalf("Get after drop: %v", err)
	}
	if cs := c.Stats(); cs.Entries != 1 {
		t.Fatalf("post-drop load did not cache: %+v", cs)
	}
}

// TestShardCacheDropPrefixScoped checks that an in-flight load whose key
// does NOT match the dropped prefix still inserts.
func TestShardCacheDropPrefixScoped(t *testing.T) {
	c := NewShardCache[[]any](1 << 20)

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.Get("job2/shard-0", func() ([]any, int64, error) {
			close(started)
			<-release
			return []any{"other-job"}, 10, nil
		}); err != nil {
			t.Errorf("Get: %v", err)
		}
	}()

	<-started
	c.DropPrefix("job1/")
	close(release)
	<-done

	if cs := c.Stats(); cs.Entries != 1 {
		t.Fatalf("unrelated DropPrefix suppressed insert: %+v", cs)
	}
}

// TestShardCacheDropPrefixRace hammers concurrent Gets against
// DropPrefix under the race detector and asserts the invariant the
// tombstones exist for: after the final DropPrefix with no loads in
// flight, nothing under the dropped prefix is resident.
func TestShardCacheDropPrefixRace(t *testing.T) {
	c := NewShardCache[[]any](1 << 20)

	const (
		workers = 8
		iters   = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("job%d/shard-%d", w%2, i%4)
				if _, err := c.Get(key, func() ([]any, int64, error) {
					return []any{key}, 16, nil
				}); err != nil {
					t.Errorf("Get %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			c.DropPrefix("job0/")
		}
	}()
	wg.Wait()

	c.DropPrefix("job0/")
	cs := c.Stats()
	for key := range c.entries {
		if len(key) >= 5 && key[:5] == "job0/" {
			t.Fatalf("dropped key %s resurrected: %+v", key, cs)
		}
	}
	if cs.Invalidations == 0 {
		t.Fatalf("no invalidations recorded: %+v", cs)
	}
}

// TestShardCacheSingleflight checks concurrent misses on one key run the
// loader once and share the result.
func TestShardCacheSingleflight(t *testing.T) {
	c := NewShardCache[[]any](1 << 20)

	var mu sync.Mutex
	loads := 0
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Get("job/shard", func() ([]any, int64, error) {
				mu.Lock()
				loads++
				mu.Unlock()
				<-release
				return []any{"v"}, 8, nil
			})
			if err != nil || len(v) != 1 {
				t.Errorf("Get: %v %v", v, err)
			}
		}()
	}
	// Let the goroutines pile up on the inflight entry, then release.
	for {
		c.mu.Lock()
		n := len(c.loads)
		c.mu.Unlock()
		if n == 1 {
			break
		}
	}
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
}
