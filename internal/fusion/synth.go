package fusion

import (
	"fmt"
	"math"
	"math/rand"
)

// SynthConfig sizes the synthetic tokamak campaign generator.
type SynthConfig struct {
	Shots          int
	DisruptionRate float64 // fraction of shots that disrupt
	FlattopSeconds float64 // flattop duration
	DropoutRate    float64 // per-sample NaN probability (sensor dropouts)
	Seed           int64
}

// DefaultSynthConfig returns a small DIII-D-like campaign.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{Shots: 20, DisruptionRate: 0.3, FlattopSeconds: 3.0, DropoutRate: 0.01, Seed: 1}
}

// Diagnostics generated per shot, at heterogeneous sample rates — the
// multi-rate alignment problem the paper highlights.
var diagnosticRates = map[string]float64{
	"ip":    1000, // plasma current [MA], 1 kHz
	"vloop": 500,  // loop voltage [V], 500 Hz
	"ne":    200,  // line-averaged density [1e19 m^-3], 200 Hz
	"coil":  1000, // coil voltage proxy [V], 1 kHz
}

// DiagnosticNames returns the generated channel names, sorted.
func DiagnosticNames() []string {
	return []string{"coil", "ip", "ne", "vloop"}
}

// SynthesizeCampaign generates a shot archive with ramp-up / flattop /
// ramp-down plasma-current waveforms; disrupted shots terminate with a
// current quench and a precursor oscillation on the coil channel (giving
// the downstream classifier real signal).
func SynthesizeCampaign(cfg SynthConfig) (*Store, error) {
	if cfg.Shots <= 0 {
		return nil, fmt.Errorf("fusion: shots=%d must be positive", cfg.Shots)
	}
	if cfg.DisruptionRate < 0 || cfg.DisruptionRate > 1 {
		return nil, fmt.Errorf("fusion: disruption rate %v out of [0,1]", cfg.DisruptionRate)
	}
	if cfg.FlattopSeconds <= 0 {
		return nil, fmt.Errorf("fusion: flattop %v must be positive", cfg.FlattopSeconds)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := NewStore()
	const rampUp, rampDown = 0.5, 0.5
	for k := 0; k < cfg.Shots; k++ {
		num := 170000 + k
		disrupted := rng.Float64() < cfg.DisruptionRate
		flattop := cfg.FlattopSeconds * (0.8 + 0.4*rng.Float64())
		tEnd := rampUp + flattop + rampDown
		tDisrupt := 0.0
		if disrupted {
			// Disruption strikes mid-flattop.
			tDisrupt = rampUp + flattop*(0.3+0.6*rng.Float64())
			tEnd = tDisrupt + 0.05 // fast current quench
		}
		ipMax := 1.0 + 0.5*rng.Float64() // MA

		shot := &Shot{Number: num, Signals: make(map[string]*Signal),
			Disrupted: disrupted, TDisrupt: tDisrupt}
		for name, rate := range diagnosticRates {
			dt := 1 / rate
			n := int(tEnd / dt)
			sig := &Signal{Name: name, Times: make([]float64, 0, n), Data: make([]float64, 0, n)}
			switch name {
			case "ip":
				sig.Units = "MA"
			case "vloop", "coil":
				sig.Units = "V"
			case "ne":
				sig.Units = "1e19 m^-3"
			}
			for i := 0; i < n; i++ {
				t := float64(i) * dt
				var v float64
				switch name {
				case "ip":
					v = ipWaveform(t, rampUp, flattop, rampDown, ipMax, disrupted, tDisrupt)
				case "vloop":
					v = 1.2*math.Exp(-t) + 0.1*rng.NormFloat64()
				case "ne":
					v = 3 + 1.5*math.Tanh(t) + 0.05*rng.NormFloat64()
				case "coil":
					v = 0.2 * rng.NormFloat64()
					if disrupted && t > tDisrupt-0.3 && t < tDisrupt {
						// Precursor: growing locked-mode oscillation.
						grow := (t - (tDisrupt - 0.3)) / 0.3
						v += 3 * grow * math.Sin(2*math.Pi*200*t)
					}
				}
				if rng.Float64() < cfg.DropoutRate {
					v = math.NaN()
				}
				sig.Times = append(sig.Times, t)
				sig.Data = append(sig.Data, v)
			}
			shot.Signals[name] = sig
		}
		if err := st.Put(shot); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func ipWaveform(t, rampUp, flattop, rampDown, ipMax float64, disrupted bool, tDisrupt float64) float64 {
	if disrupted && t >= tDisrupt {
		// Current quench: exponential collapse over ~20 ms.
		return ipMax * math.Exp(-(t-tDisrupt)/0.02)
	}
	switch {
	case t < rampUp:
		return ipMax * t / rampUp
	case t < rampUp+flattop:
		return ipMax
	default:
		d := t - rampUp - flattop
		v := ipMax * (1 - d/rampDown)
		if v < 0 {
			v = 0
		}
		return v
	}
}
