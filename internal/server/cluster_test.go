package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// fleetNode is one in-process draid fleet member under httptest.
type fleetNode struct {
	id string
	s  *Server
	ts *httptest.Server
}

func (f *fleetNode) kill() {
	f.ts.Close()
	f.s.Close()
}

// startFleet stands up n cluster members over one shared data dir. The
// chicken-and-egg of needing peer URLs before the servers exist is cut
// with swappable handlers: listeners first, handlers wired in after.
func startFleet(t *testing.T, dataDir string, n int, modify func(i int, o *Options)) []*fleetNode {
	t.Helper()
	holders := make([]atomic.Pointer[http.Handler], n)
	fleet := make([]*fleetNode, n)
	nodes := make([]cluster.Node, n)
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := holders[i].Load()
			if h == nil {
				http.Error(w, "node starting", http.StatusServiceUnavailable)
				return
			}
			(*h).ServeHTTP(w, r)
		}))
		fleet[i] = &fleetNode{id: fmt.Sprintf("n%d", i+1), ts: ts}
		nodes[i] = cluster.Node{ID: fleet[i].id, URL: ts.URL}
	}
	for i := 0; i < n; i++ {
		cl, err := cluster.New(cluster.Config{
			Self:          fleet[i].id,
			Nodes:         nodes,
			ProbeInterval: 50 * time.Millisecond,
			ProbeTimeout:  500 * time.Millisecond,
			FailAfter:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Workers: 2, DataDir: dataDir, Cluster: cl}
		if modify != nil {
			modify(i, &opts)
		}
		s, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		fleet[i].s = s
		h := s.Handler()
		holders[i].Store(&h)
		t.Cleanup(func() { fleet[i].kill() })
	}
	return fleet
}

// fleetInfo decodes the parts of /v1/cluster the tests assert on.
type fleetInfo struct {
	Clustered bool                   `json:"clustered"`
	Self      string                 `json:"self"`
	Members   []cluster.MemberStatus `json:"members"`
	Job       *struct {
		Owner string `json:"owner"`
		URL   string `json:"url"`
		Local bool   `json:"local"`
	} `json:"job"`
}

func ownerOf(t *testing.T, fleet []*fleetNode, askIdx int, jobID string) (idx int) {
	t.Helper()
	var info fleetInfo
	if code := getJSON(t, fleet[askIdx].ts.URL+"/v1/cluster?job="+jobID, &info); code != http.StatusOK {
		t.Fatalf("cluster info status %d", code)
	}
	for i, f := range fleet {
		if f.id == info.Job.Owner {
			return i
		}
	}
	t.Fatalf("owner %q of %s is not a fleet member", info.Job.Owner, jobID)
	return -1
}

// TestClusterFleet is the 3-node acceptance path: a job submitted to
// any node lands on its hash owner, every node agrees who that is, and
// a batch stream proxied through a non-owner is byte-identical to the
// owner-direct stream.
func TestClusterFleet(t *testing.T) {
	fleet := startFleet(t, t.TempDir(), 3, nil)

	ids := make([]string, len(fleet))
	for i := range fleet {
		id, err := SubmitAndWait(fleet[i].ts.URL, JobSpec{
			Domain: core.Climate, Name: fmt.Sprintf("c%d", i), Seed: int64(i + 1),
		}, 60*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if node, _, ok := parseJobID(id); !ok || node != fleet[i].id {
			t.Fatalf("job submitted via %s got ID %q; want that node's namespace", fleet[i].id, id)
		}
	}

	owners := make([]int, len(ids))
	for i, id := range ids {
		// Every member must agree on the owner.
		owners[i] = ownerOf(t, fleet, 0, id)
		for ask := 1; ask < len(fleet); ask++ {
			if got := ownerOf(t, fleet, ask, id); got != owners[i] {
				t.Fatalf("fleet disagrees on owner of %s: %s vs %s", id, fleet[owners[i]].id, fleet[got].id)
			}
		}
		// And the owner must actually hold it locally — nobody else.
		for j, f := range fleet {
			var local []JobStatus
			if code := getJSON(t, f.ts.URL+"/v1/jobs?scope=local", &local); code != http.StatusOK {
				t.Fatalf("local list status %d", code)
			}
			holds := false
			for _, st := range local {
				if st.ID == id {
					holds = true
					if st.Node != f.id {
						t.Fatalf("status of %s on %s stamped node %q", id, f.id, st.Node)
					}
				}
			}
			if holds != (j == owners[i]) {
				t.Fatalf("job %s held by %s (owner is %s)", id, f.id, fleet[owners[i]].id)
			}
		}
	}

	// The merged list view shows all jobs from any node.
	var merged []JobStatus
	if code := getJSON(t, fleet[2].ts.URL+"/v1/jobs", &merged); code != http.StatusOK {
		t.Fatalf("merged list status %d", code)
	}
	if len(merged) != len(ids) {
		t.Fatalf("merged list has %d jobs, want %d", len(merged), len(ids))
	}

	for i, id := range ids {
		owner := fleet[owners[i]]
		direct := streamAll(t, owner.ts.URL+"/v1/jobs/"+id+"/batches?batch_size=4")
		if len(direct) == 0 {
			t.Fatalf("empty direct stream for %s", id)
		}
		for j, f := range fleet {
			if j == owners[i] {
				continue
			}
			// Default routing: transparent proxy, identical bytes.
			proxied := streamAll(t, f.ts.URL+"/v1/jobs/"+id+"/batches?batch_size=4")
			if string(proxied) != string(direct) {
				t.Fatalf("stream of %s proxied via %s differs from owner-direct (%d vs %d bytes)",
					id, f.id, len(proxied), len(direct))
			}
			// Client-selected routing: a 307 pointing at the owner.
			req, _ := http.NewRequest(http.MethodGet, f.ts.URL+"/v1/jobs/"+id, nil)
			req.Header.Set(cluster.HeaderRoute, cluster.RouteRedirect)
			resp, err := http.DefaultTransport.RoundTrip(req) // no auto-follow
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusTemporaryRedirect {
				t.Fatalf("redirect-routed request via %s got %d", f.id, resp.StatusCode)
			}
			if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, owner.ts.URL) {
				t.Fatalf("redirect Location %q does not point at owner %s", loc, owner.ts.URL)
			}
		}
		// Provenance must be servable wherever the request lands.
		resp, err := http.Get(fleet[(owners[i]+1)%len(fleet)].ts.URL + "/v1/jobs/" + id + "/provenance")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("proxied provenance status %d", resp.StatusCode)
		}
	}
}

// TestClusterFailoverMidStream kills a job's owner while a client is
// partway through its batch stream and requires the same cursor to
// resume against a survivor — served from the shared data dir via
// job-log adoption, completing the stream byte-for-byte.
func TestClusterFailoverMidStream(t *testing.T) {
	fleet := startFleet(t, t.TempDir(), 3, nil)

	id, err := SubmitAndWait(fleet[0].ts.URL, JobSpec{Domain: core.Climate, Name: "fo", Seed: 7}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ownerIdx := ownerOf(t, fleet, 0, id)
	survivorIdx := (ownerIdx + 1) % len(fleet)
	survivor := fleet[survivorIdx]

	streamURL := survivor.ts.URL + "/v1/jobs/" + id + "/batches?batch_size=4"
	full := streamAll(t, streamURL)
	fullLines := strings.Split(strings.TrimSuffix(string(full), "\n"), "\n")
	if len(fullLines) < 3 {
		t.Fatalf("job too small for a mid-stream kill: %d batches", len(fullLines))
	}

	// Read two batches through the survivor (proxied from the owner),
	// keeping the cursor the way a disconnected client would.
	_, _, _, cursor, err := StreamBatchesFrom(streamURL+"&max_batches=2", "")
	if err != nil {
		t.Fatal(err)
	}
	if cursor == "" {
		t.Fatal("no cursor after partial stream")
	}

	fleet[ownerIdx].kill()

	// Resume the same cursor against the survivor: its first forward
	// attempt fails, the owner is marked down, the ring reassigns the
	// range, and the job is adopted from the shared logs.
	resumed := streamAll(t, streamURL+"&cursor="+cursor)
	got := append([]string{fullLines[0], fullLines[1]}, renumberFrom(t, resumed, 2)...)
	if len(got) != len(fullLines) {
		t.Fatalf("resumed stream yields %d total batches, want %d", len(got), len(fullLines))
	}
	for i := range got {
		if got[i] != fullLines[i] {
			t.Fatalf("batch %d differs after failover:\n pre-kill: %s\n resumed:  %s", i, fullLines[i], got[i])
		}
	}

	// The fleet has converged: the survivor reports the dead member
	// down, a living member owns the job, and that member holds it
	// locally (adopted from the shared logs, not proxied).
	var info fleetInfo
	if code := getJSON(t, survivor.ts.URL+"/v1/cluster?job="+id, &info); code != http.StatusOK {
		t.Fatalf("cluster info status %d", code)
	}
	if info.Job.Owner == fleet[ownerIdx].id {
		t.Fatalf("job %s still owned by dead member %s", id, fleet[ownerIdx].id)
	}
	for _, m := range info.Members {
		if m.ID == fleet[ownerIdx].id && m.Alive {
			t.Fatalf("dead member %s still reported alive by %s", m.ID, survivor.id)
		}
	}
	var adopterLocal []JobStatus
	for _, f := range fleet {
		if f.id != info.Job.Owner {
			continue
		}
		if code := getJSON(t, f.ts.URL+"/v1/jobs?scope=local", &adopterLocal); code != http.StatusOK {
			t.Fatalf("adopter local list status %d", code)
		}
	}
	found := false
	for _, st := range adopterLocal {
		if st.ID == id && st.State == JobDone {
			found = true
		}
	}
	if !found {
		t.Fatalf("new owner %s does not hold adopted job %s locally", info.Job.Owner, id)
	}
}

// renumberFrom reparses a resumed stream and renumbers its batch
// indices to continue the original stream's count, so the two can be
// compared line-for-line.
func renumberFrom(t *testing.T, rest []byte, start int) []string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimSuffix(string(rest), "\n"), "\n") {
		if line == "" {
			continue
		}
		var wire BatchWire
		if err := json.Unmarshal([]byte(line), &wire); err != nil {
			t.Fatalf("resumed stream line unparsable: %v (%q)", err, line)
		}
		wire.Batch = start
		start++
		b, _ := json.Marshal(&wire)
		out = append(out, string(b))
	}
	return out
}
