// Package anonymize implements the privacy transformations the bio/health
// archetype requires (paper §3.3: datasets carry PHI/PII and demand
// HIPAA-grade handling; Table 1 lists "Anonymization" and "Secure
// sharding" as bio workflow steps; §5 calls for secure enclaves and
// auditability). It provides field scrubbing, deterministic HMAC
// pseudonymization, per-record date shifting, k-anonymity generalization
// for quasi-identifiers, and AES-GCM shard encryption.
package anonymize

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Record is one clinical row: direct identifiers, quasi-identifiers, and
// clinical payload fields.
type Record struct {
	ID        string // direct identifier (MRN, SSN-like)
	Name      string // direct identifier
	BirthDate time.Time
	ZIP       string    // quasi-identifier
	Age       int       // quasi-identifier
	Sex       string    // quasi-identifier
	Notes     string    // free text possibly containing PHI
	Values    []float64 // clinical measurements (kept verbatim)
}

// Pseudonymizer maps direct identifiers to stable pseudonyms with
// HMAC-SHA256 under a secret key, so the same patient maps to the same
// pseudonym across datasets without the key-holder being able to reverse it.
type Pseudonymizer struct {
	key []byte
}

// NewPseudonymizer derives a pseudonymizer from a secret. Empty secrets
// are rejected — an unkeyed hash would be re-identifiable by dictionary.
func NewPseudonymizer(secret []byte) (*Pseudonymizer, error) {
	if len(secret) < 16 {
		return nil, fmt.Errorf("anonymize: secret too short (%d bytes, need >=16)", len(secret))
	}
	return &Pseudonymizer{key: append([]byte(nil), secret...)}, nil
}

// Pseudonym returns a stable 16-hex-char pseudonym for an identifier.
func (p *Pseudonymizer) Pseudonym(id string) string {
	mac := hmac.New(sha256.New, p.key)
	mac.Write([]byte(id))
	return hex.EncodeToString(mac.Sum(nil))[:16]
}

// DateShift returns a per-subject constant shift in [-365,+365) days
// derived from the key and subject id; shifting all of a subject's dates
// by the same offset preserves intervals (HIPAA Safe-Harbor-compatible
// technique).
func (p *Pseudonymizer) DateShift(id string) time.Duration {
	mac := hmac.New(sha256.New, p.key)
	mac.Write([]byte("dateshift:" + id))
	sum := mac.Sum(nil)
	days := int64(binary.BigEndian.Uint32(sum[:4]))%730 - 365
	return time.Duration(days) * 24 * time.Hour
}

// phiPatterns matches common PHI shapes in free text.
var phiPatterns = []*regexp.Regexp{
	regexp.MustCompile(`\b\d{3}-\d{2}-\d{4}\b`),           // SSN
	regexp.MustCompile(`\b\d{3}[-.\s]\d{3}[-.\s]\d{4}\b`), // phone
	regexp.MustCompile(`\b[\w.+-]+@[\w-]+\.[\w.]+\b`),     // email
	regexp.MustCompile(`\b\d{1,2}/\d{1,2}/\d{2,4}\b`),     // dates
	regexp.MustCompile(`\bMRN[:\s]*\d+\b`),                // medical record numbers
}

// ScrubText replaces PHI-shaped substrings with [REDACTED] and returns the
// scrubbed text and the number of redactions.
func ScrubText(s string) (string, int) {
	n := 0
	for _, re := range phiPatterns {
		s = re.ReplaceAllStringFunc(s, func(string) string {
			n++
			return "[REDACTED]"
		})
	}
	return s, n
}

// GeneralizeZIP truncates a ZIP code to its first 3 digits (Safe Harbor).
func GeneralizeZIP(zip string) string {
	digits := strings.Map(func(r rune) rune {
		if r >= '0' && r <= '9' {
			return r
		}
		return -1
	}, zip)
	if len(digits) < 3 {
		return "000"
	}
	return digits[:3] + "**"
}

// GeneralizeAge buckets an age into width-year bands ("40-49" for width 10).
func GeneralizeAge(age, width int) string {
	if width <= 0 {
		width = 10
	}
	if age < 0 {
		age = 0
	}
	lo := (age / width) * width
	return fmt.Sprintf("%d-%d", lo, lo+width-1)
}

// AnonymizeOptions configures record anonymization.
type AnonymizeOptions struct {
	AgeBandWidth int
	ScrubNotes   bool
}

// AnonymizedRecord is the privacy-preserving projection of a Record.
type AnonymizedRecord struct {
	Pseudonym string
	AgeBand   string
	ZIP3      string
	Sex       string
	BirthYear int // shifted birth year only
	Notes     string
	Values    []float64
}

// Anonymize transforms records: direct identifiers are pseudonymized,
// quasi-identifiers generalized, dates shifted, free text scrubbed.
func Anonymize(records []Record, p *Pseudonymizer, opts AnonymizeOptions) ([]AnonymizedRecord, error) {
	if p == nil {
		return nil, errors.New("anonymize: nil pseudonymizer")
	}
	out := make([]AnonymizedRecord, len(records))
	for i, r := range records {
		a := AnonymizedRecord{
			Pseudonym: p.Pseudonym(r.ID),
			AgeBand:   GeneralizeAge(r.Age, opts.AgeBandWidth),
			ZIP3:      GeneralizeZIP(r.ZIP),
			Sex:       r.Sex,
			Values:    append([]float64(nil), r.Values...),
		}
		if !r.BirthDate.IsZero() {
			a.BirthYear = r.BirthDate.Add(p.DateShift(r.ID)).Year()
		}
		if opts.ScrubNotes {
			a.Notes, _ = ScrubText(r.Notes)
		}
		out[i] = a
	}
	return out, nil
}

// quasiKey builds the quasi-identifier tuple used for k-anonymity.
func quasiKey(a AnonymizedRecord) string {
	return a.AgeBand + "|" + a.ZIP3 + "|" + a.Sex
}

// KAnonymity returns the k of the dataset: the size of the smallest
// quasi-identifier equivalence class (0 for an empty dataset).
func KAnonymity(records []AnonymizedRecord) int {
	if len(records) == 0 {
		return 0
	}
	counts := make(map[string]int)
	for _, r := range records {
		counts[quasiKey(r)]++
	}
	k := len(records)
	for _, c := range counts {
		if c < k {
			k = c
		}
	}
	return k
}

// EnforceKAnonymity suppresses (drops) records in equivalence classes
// smaller than k, returning the surviving records and the suppression
// count. This is the simplest compliant strategy; widening
// generalization bands first reduces suppression.
func EnforceKAnonymity(records []AnonymizedRecord, k int) ([]AnonymizedRecord, int, error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("anonymize: k=%d must be positive", k)
	}
	counts := make(map[string]int)
	for _, r := range records {
		counts[quasiKey(r)]++
	}
	var out []AnonymizedRecord
	suppressed := 0
	for _, r := range records {
		if counts[quasiKey(r)] >= k {
			out = append(out, r)
		} else {
			suppressed++
		}
	}
	return out, suppressed, nil
}

// ContainsPHI scans free text for residual PHI-shaped content. Used as a
// release gate on shard payloads.
func ContainsPHI(s string) bool {
	for _, re := range phiPatterns {
		if re.MatchString(s) {
			return true
		}
	}
	return false
}

// --- secure sharding ---------------------------------------------------

// EncryptShard seals payload with AES-256-GCM under key (32 bytes),
// prepending the nonce. The additional data binds the shard name so a
// shard cannot be swapped for another without detection.
func EncryptShard(key []byte, shardName string, payload []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("anonymize: nonce: %w", err)
	}
	sealed := gcm.Seal(nil, nonce, payload, []byte(shardName))
	return append(nonce, sealed...), nil
}

// DecryptShard opens a sealed shard, verifying integrity and the bound
// shard name.
func DecryptShard(key []byte, shardName string, sealed []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	ns := gcm.NonceSize()
	if len(sealed) < ns {
		return nil, errors.New("anonymize: sealed shard too short")
	}
	plain, err := gcm.Open(nil, sealed[:ns], sealed[ns:], []byte(shardName))
	if err != nil {
		return nil, fmt.Errorf("anonymize: decrypt shard %q: %w", shardName, err)
	}
	return plain, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("anonymize: key must be 32 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("anonymize: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("anonymize: gcm: %w", err)
	}
	return gcm, nil
}

// AuditSummary reports an anonymization pass for compliance records.
type AuditSummary struct {
	Records    int
	K          int
	Suppressed int
	Redactions int
}

// Process runs the full bio/health privacy path: anonymize, scrub, enforce
// k-anonymity, and return the audit summary.
func Process(records []Record, p *Pseudonymizer, k int, opts AnonymizeOptions) ([]AnonymizedRecord, AuditSummary, error) {
	opts.ScrubNotes = true
	anon, err := Anonymize(records, p, opts)
	if err != nil {
		return nil, AuditSummary{}, err
	}
	redactions := 0
	for i := range records {
		_, n := ScrubText(records[i].Notes)
		redactions += n
		_ = i
	}
	safe, suppressed, err := EnforceKAnonymity(anon, k)
	if err != nil {
		return nil, AuditSummary{}, err
	}
	// Release gate: no residual PHI in any retained note.
	for _, r := range safe {
		if ContainsPHI(r.Notes) {
			return nil, AuditSummary{}, fmt.Errorf("anonymize: residual PHI in record %s", r.Pseudonym)
		}
	}
	sum := AuditSummary{
		Records:    len(records),
		K:          KAnonymity(safe),
		Suppressed: suppressed,
		Redactions: redactions,
	}
	return safe, sum, nil
}

// EquivalenceClasses returns the sorted quasi-identifier class sizes
// (diagnostics for generalization tuning).
func EquivalenceClasses(records []AnonymizedRecord) []int {
	counts := make(map[string]int)
	for _, r := range records {
		counts[quasiKey(r)]++
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
