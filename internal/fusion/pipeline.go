package fusion

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/formats/tfrecord"
	"repro/internal/pipeline"
	"repro/internal/shard"
	"repro/internal/split"
)

// Config tunes the fusion archetype pipeline.
type Config struct {
	Dt            float64 // common time base (seconds)
	WindowSamples int
	WindowStride  int
	Horizon       float64 // disruption-label lookahead (seconds)
	Workers       int
	ShardTarget   int64
	// EmitSciH5 additionally exports the aligned campaign as a
	// hierarchical container (Table 1: "TFRecord/HDF5").
	EmitSciH5 bool
	Seed      int64
}

// DefaultConfig matches the reproduction experiments.
func DefaultConfig() Config {
	return Config{Dt: 0.01, WindowSamples: 50, WindowStride: 25, Horizon: 0.3,
		Workers: 4, ShardTarget: 128 << 10, Seed: 1}
}

// Product accumulates the fusion pipeline's outputs.
type Product struct {
	Store    *Store
	Aligned  []*AlignedShot
	Windows  []Window
	Split    *split.Result
	Manifest *shard.Manifest
	// SciH5 holds the hierarchical-container export when
	// Config.EmitSciH5 is set.
	SciH5 []byte
}

// NewDataset wraps a shot store for the pipeline.
func NewDataset(name string, st *Store) *pipeline.Dataset {
	ds := pipeline.NewDataset(name, core.Fusion, &Product{Store: st})
	ds.Records = int64(len(st.Shots()))
	return ds
}

func product(ds *pipeline.Dataset) (*Product, error) {
	p, ok := ds.Payload.(*Product)
	if !ok {
		return nil, fmt.Errorf("fusion: payload is %T, want *Product", ds.Payload)
	}
	return p, nil
}

// NewPipeline assembles the Table 1 fusion workflow: extract/align
// diagnostics → physics-based features → normalize shots → TFRecord.
func NewPipeline(cfg Config, sink shard.Sink) (*pipeline.Pipeline, error) {
	if sink == nil {
		return nil, errors.New("fusion: nil sink")
	}
	if cfg.Dt <= 0 || cfg.WindowSamples <= 0 || cfg.WindowStride <= 0 {
		return nil, fmt.Errorf("fusion: invalid config %+v", cfg)
	}

	extract := pipeline.StageFunc{StageName: "extract-shots", StageKind: core.Ingest, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		if p.Store == nil {
			return errors.New("fusion: no shot store on payload")
		}
		shots := p.Store.Shots()
		if len(shots) == 0 {
			return errors.New("fusion: empty campaign")
		}
		missing, total := 0, 0
		for _, num := range shots {
			s, err := p.Store.Get(num)
			if err != nil {
				return err
			}
			for _, sig := range s.Signals {
				total += len(sig.Data)
				for _, v := range sig.Data {
					if math.IsNaN(v) {
						missing++
					}
				}
			}
		}
		ds.Facts.StandardFormat = true // MDSplus-like tree is the community store
		ds.Facts.Validated = true
		ds.Facts.MissingRate = float64(missing) / float64(total)
		ds.SetMeta("machine", "synthetic tokamak")
		ds.SetMeta("shots", fmt.Sprintf("%d", len(shots)))
		ds.SetMeta("diagnostics", fmt.Sprintf("%d", len(DiagnosticNames())))
		ds.Records = int64(len(shots))
		ds.Bytes = int64(total * 8)
		return nil
	}}

	align := pipeline.StageFunc{StageName: "align-diagnostics", StageKind: core.Preprocess, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		shots := p.Store.Shots()
		p.Aligned = make([]*AlignedShot, len(shots))
		err = pipeline.ForEach(len(shots), cfg.Workers, func(i int) error {
			s, err := p.Store.Get(shots[i])
			if err != nil {
				return err
			}
			a, err := Align(s, cfg.Dt)
			if err != nil {
				return err
			}
			p.Aligned[i] = a
			return nil
		})
		if err != nil {
			return err
		}
		// Resampling bridges dropouts, so missing data is now handled.
		ds.Facts.MissingRate = 0
		ds.Facts.AlignedGrids = true
		ds.SetMeta("time_base", fmt.Sprintf("dt=%gs", cfg.Dt))
		return nil
	}}

	features := pipeline.StageFunc{StageName: "physics-features", StageKind: core.Transform, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		return pipeline.ForEach(len(p.Aligned), cfg.Workers, func(i int) error {
			return p.Aligned[i].AddDerivativeChannels()
		})
	}}

	normalize := pipeline.StageFunc{StageName: "normalize-shots", StageKind: core.Transform, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		if err := pipeline.ForEach(len(p.Aligned), cfg.Workers, func(i int) error {
			_, err := p.Aligned[i].NormalizePerShot()
			return err
		}); err != nil {
			return err
		}
		ds.Facts.Normalized = true
		return nil
	}}

	window := pipeline.StageFunc{StageName: "windowize", StageKind: core.Structure, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		p.Windows = nil
		for _, a := range p.Aligned {
			ws, err := Windowize(a, cfg.WindowSamples, cfg.WindowStride, cfg.Horizon)
			if err != nil {
				return err
			}
			p.Windows = append(p.Windows, ws...)
		}
		if len(p.Windows) == 0 {
			return errors.New("fusion: no windows produced (shots too short?)")
		}
		ds.Facts.FeaturesExtracted = true
		ds.Facts.StructuredLayout = true
		ds.Facts.LabelCoverage = 1 // disruption labels derived from shot outcomes
		ds.Records = int64(len(p.Windows))
		return nil
	}}

	shardStage := pipeline.StageFunc{StageName: "tfrecord-shard", StageKind: core.Shard, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		// Grouped split: a shot's windows never straddle partitions.
		groups := make([]string, len(p.Windows))
		for i, w := range p.Windows {
			groups[i] = fmt.Sprintf("shot-%d", w.Shot)
		}
		res, err := split.Grouped(groups, split.DefaultFractions(), cfg.Seed)
		if err != nil {
			return err
		}
		p.Split = res

		w, err := shard.NewWriter(sink, shard.Options{Prefix: "fusion-train", TargetBytes: cfg.ShardTarget})
		if err != nil {
			return err
		}
		for _, i := range res.Train {
			win := p.Windows[i]
			ex := tfrecord.NewExample()
			feats := make([]float32, len(win.Features))
			for j, v := range win.Features {
				feats[j] = float32(v)
			}
			ex.Features["signal"] = tfrecord.Feature{Floats: feats}
			ex.Features["shot"] = tfrecord.Feature{Ints: []int64{int64(win.Shot)}}
			ex.Features["label"] = tfrecord.Feature{Ints: []int64{int64(win.Label)}}
			// Serving-side consumers need the label's provenance: where the
			// window sits in the shot and how far ahead the disruption
			// label looks (Config.Horizon).
			ex.Features["start"] = tfrecord.Feature{Ints: []int64{int64(win.Start)}}
			ex.Features["horizon"] = tfrecord.Feature{Floats: []float32{float32(cfg.Horizon)}}
			if err := w.Write(ex.Marshal()); err != nil {
				return err
			}
		}
		p.Manifest, err = w.Close()
		if err != nil {
			return err
		}
		if cfg.EmitSciH5 {
			p.SciH5, err = ExportSciH5(p.Aligned)
			if err != nil {
				return err
			}
		}
		ds.Facts.SplitDone = true
		ds.Facts.Sharded = true
		ds.Facts.PipelineAutomated = true
		ds.Bytes = p.Manifest.TotalStoredBytes() + int64(len(p.SciH5))
		return nil
	}}

	return pipeline.New("fusion-archetype", extract, align, features, normalize, window, shardStage)
}

// DisruptionRate reports the positive-label fraction among windows
// (class-balance diagnostics; fusion labels are scarce, Table 1).
func DisruptionRate(windows []Window) float64 {
	if len(windows) == 0 {
		return 0
	}
	pos := 0
	for _, w := range windows {
		if w.Label == 1 {
			pos++
		}
	}
	return float64(pos) / float64(len(windows))
}
