// Package bp implements BP-lite, an ADIOS-style process-group container
// (paper Fig. 1 and §3.4: materials pipelines shard graph data via ADIOS;
// HydraGNN trains from ADIOS-sharded graphs). It reproduces the pattern
// that makes ADIOS suit parallel HPC writers: each writer (MPI rank)
// appends a self-contained *process group* (PG) block with its variables,
// and a footer index written once at close lets readers locate any
// variable without scanning.
//
// Layout:
//
//	[8]  magic "BPLITE\x01\x00"
//	[..] PG blocks, append-only, each:
//	       u32 rank, u32 step, u32 nvars, then per variable:
//	         name (u16 len + bytes), u8 ndims, u64 dims[], u64 nbytes,
//	         float64 data (little-endian), u32 CRC32 of the data bytes
//	[..] footer: JSON index of PG offsets and variable metadata
//	[8]  u64 footer offset
//	[4]  u32 footer CRC32
//	[4]  trailer magic "BPEN"
package bp

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

var (
	magic   = []byte("BPLITE\x01\x00")
	trailer = []byte("BPEN")
)

// ErrCorrupt reports a checksum failure.
var ErrCorrupt = errors.New("bp: checksum mismatch")

// VarMeta describes one variable inside a process group.
type VarMeta struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape"`
}

// PGMeta is the footer's description of one process group.
type PGMeta struct {
	Rank   int       `json:"rank"`
	Step   int       `json:"step"`
	Offset int64     `json:"offset"`
	Vars   []VarMeta `json:"vars"`
}

type footer struct {
	PGs []PGMeta `json:"pgs"`
}

// Variable is a named array written into a process group.
type Variable struct {
	Name  string
	Shape []int
	Data  []float64
}

// Writer accumulates process groups. It is not safe for concurrent use;
// parallel writers should each build PG payloads with MarshalPG and a
// coordinator appends them (mirroring ADIOS aggregation).
type Writer struct {
	buf  bytes.Buffer
	foot footer
	done bool
}

// NewWriter returns an empty BP-lite writer.
func NewWriter() *Writer {
	w := &Writer{}
	w.buf.Write(magic)
	return w
}

// AppendPG writes one process group for (rank, step).
func (w *Writer) AppendPG(rank, step int, vars []Variable) error {
	if w.done {
		return errors.New("bp: writer already finalized")
	}
	payload, metas, err := MarshalPG(rank, step, vars)
	if err != nil {
		return err
	}
	w.foot.PGs = append(w.foot.PGs, PGMeta{
		Rank: rank, Step: step, Offset: int64(w.buf.Len()), Vars: metas,
	})
	w.buf.Write(payload)
	return nil
}

// AppendRawPG appends a payload produced by MarshalPG (the parallel-writer
// aggregation path). The caller supplies the same rank/step used to build it.
func (w *Writer) AppendRawPG(rank, step int, payload []byte, metas []VarMeta) error {
	if w.done {
		return errors.New("bp: writer already finalized")
	}
	w.foot.PGs = append(w.foot.PGs, PGMeta{
		Rank: rank, Step: step, Offset: int64(w.buf.Len()), Vars: metas,
	})
	w.buf.Write(payload)
	return nil
}

// MarshalPG serializes one process group payload without touching a
// Writer, so ranks can build blocks concurrently.
func MarshalPG(rank, step int, vars []Variable) ([]byte, []VarMeta, error) {
	if rank < 0 || step < 0 {
		return nil, nil, fmt.Errorf("bp: negative rank %d or step %d", rank, step)
	}
	var buf bytes.Buffer
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(rank))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(step))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(vars)))
	buf.Write(hdr[:])

	metas := make([]VarMeta, 0, len(vars))
	for _, v := range vars {
		if v.Name == "" {
			return nil, nil, errors.New("bp: variable with empty name")
		}
		if len(v.Name) > math.MaxUint16 {
			return nil, nil, fmt.Errorf("bp: variable name too long (%d)", len(v.Name))
		}
		n := 1
		for _, d := range v.Shape {
			if d < 0 {
				return nil, nil, fmt.Errorf("bp: variable %q has negative dim", v.Name)
			}
			n *= d
		}
		if n != len(v.Data) {
			return nil, nil, fmt.Errorf("bp: variable %q shape %v needs %d values, have %d",
				v.Name, v.Shape, n, len(v.Data))
		}
		var nameLen [2]byte
		binary.LittleEndian.PutUint16(nameLen[:], uint16(len(v.Name)))
		buf.Write(nameLen[:])
		buf.WriteString(v.Name)
		buf.WriteByte(byte(len(v.Shape)))
		for _, d := range v.Shape {
			var db [8]byte
			binary.LittleEndian.PutUint64(db[:], uint64(d))
			buf.Write(db[:])
		}
		data := make([]byte, 8+len(v.Data)*8+4)
		binary.LittleEndian.PutUint64(data[:8], uint64(len(v.Data)*8))
		for i, x := range v.Data {
			binary.LittleEndian.PutUint64(data[8+i*8:], math.Float64bits(x))
		}
		crc := crc32.ChecksumIEEE(data[8 : 8+len(v.Data)*8])
		binary.LittleEndian.PutUint32(data[8+len(v.Data)*8:], crc)
		buf.Write(data)
		metas = append(metas, VarMeta{Name: v.Name, Shape: append([]int(nil), v.Shape...)})
	}
	return buf.Bytes(), metas, nil
}

// Finalize writes the footer and trailer and returns the container bytes.
func (w *Writer) Finalize() ([]byte, error) {
	if w.done {
		return nil, errors.New("bp: writer already finalized")
	}
	w.done = true
	off := int64(w.buf.Len())
	enc, err := json.Marshal(&w.foot)
	if err != nil {
		return nil, fmt.Errorf("bp: encode footer: %w", err)
	}
	w.buf.Write(enc)
	var tail [16]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(off))
	binary.LittleEndian.PutUint32(tail[8:12], crc32.ChecksumIEEE(enc))
	copy(tail[12:], trailer)
	w.buf.Write(tail[:])
	return w.buf.Bytes(), nil
}

// File is a decoded BP-lite container.
type File struct {
	b    []byte
	foot footer
}

// Open validates the container and parses the footer index.
func Open(b []byte) (*File, error) {
	if len(b) < len(magic)+16 || !bytes.Equal(b[:len(magic)], magic) {
		return nil, errors.New("bp: bad magic")
	}
	tail := b[len(b)-16:]
	if !bytes.Equal(tail[12:], trailer) {
		return nil, errors.New("bp: bad trailer")
	}
	off := int64(binary.LittleEndian.Uint64(tail[:8]))
	if off < int64(len(magic)) || off > int64(len(b)-16) {
		return nil, errors.New("bp: footer offset out of range")
	}
	enc := b[off : len(b)-16]
	if crc32.ChecksumIEEE(enc) != binary.LittleEndian.Uint32(tail[8:12]) {
		return nil, fmt.Errorf("%w: footer", ErrCorrupt)
	}
	f := &File{b: b}
	if err := json.Unmarshal(enc, &f.foot); err != nil {
		return nil, fmt.Errorf("bp: decode footer: %w", err)
	}
	return f, nil
}

// PGs returns the footer's process-group index.
func (f *File) PGs() []PGMeta { return f.foot.PGs }

// ReadPG decodes the i-th process group's variables, verifying checksums.
func (f *File) ReadPG(i int) (rank, step int, vars []Variable, err error) {
	if i < 0 || i >= len(f.foot.PGs) {
		return 0, 0, nil, fmt.Errorf("bp: PG index %d out of range [0,%d)", i, len(f.foot.PGs))
	}
	rank, step, vars, _, err = parsePG(f.b, int(f.foot.PGs[i].Offset))
	return rank, step, vars, err
}

// UnmarshalPG decodes one standalone process-group payload (as produced
// by MarshalPG), verifying per-variable checksums. It is the record-level
// counterpart to ReadPG: a PG block is fully self-describing, so one
// block can travel outside its container — e.g. as a shard record.
func UnmarshalPG(b []byte) (rank, step int, vars []Variable, err error) {
	rank, step, vars, end, err := parsePG(b, 0)
	if err != nil {
		return 0, 0, nil, err
	}
	if end != len(b) {
		return 0, 0, nil, fmt.Errorf("bp: %d trailing bytes after PG", len(b)-end)
	}
	return rank, step, vars, nil
}

// parsePG decodes one PG block starting at pos, returning the offset
// just past it.
func parsePG(b []byte, pos int) (rank, step int, vars []Variable, end int, err error) {
	if pos < 0 || pos+12 > len(b) {
		return 0, 0, nil, 0, errors.New("bp: PG header out of bounds")
	}
	rank = int(binary.LittleEndian.Uint32(b[pos:]))
	step = int(binary.LittleEndian.Uint32(b[pos+4:]))
	nvars := int(binary.LittleEndian.Uint32(b[pos+8:]))
	pos += 12
	for v := 0; v < nvars; v++ {
		if pos+2 > len(b) {
			return 0, 0, nil, 0, errors.New("bp: truncated variable name length")
		}
		nameLen := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		if pos+nameLen+1 > len(b) {
			return 0, 0, nil, 0, errors.New("bp: truncated variable name")
		}
		name := string(b[pos : pos+nameLen])
		pos += nameLen
		ndims := int(b[pos])
		pos++
		if pos+ndims*8 > len(b) {
			return 0, 0, nil, 0, errors.New("bp: truncated dims")
		}
		shape := make([]int, ndims)
		for d := range shape {
			shape[d] = int(binary.LittleEndian.Uint64(b[pos:]))
			pos += 8
		}
		if pos+8 > len(b) {
			return 0, 0, nil, 0, errors.New("bp: truncated data length")
		}
		nbytes := int(binary.LittleEndian.Uint64(b[pos:]))
		pos += 8
		if nbytes < 0 || nbytes%8 != 0 || nbytes > len(b)-pos || pos+nbytes+4 > len(b) {
			return 0, 0, nil, 0, errors.New("bp: truncated data")
		}
		payload := b[pos : pos+nbytes]
		pos += nbytes
		crc := binary.LittleEndian.Uint32(b[pos:])
		pos += 4
		if crc32.ChecksumIEEE(payload) != crc {
			return 0, 0, nil, 0, fmt.Errorf("%w: variable %q", ErrCorrupt, name)
		}
		data := make([]float64, nbytes/8)
		for j := range data {
			data[j] = math.Float64frombits(binary.LittleEndian.Uint64(payload[j*8:]))
		}
		vars = append(vars, Variable{Name: name, Shape: shape, Data: data})
	}
	return rank, step, vars, pos, nil
}

// ReadVar gathers a named variable across all process groups, returned in
// PG order — the global-array read pattern ADIOS consumers use.
func (f *File) ReadVar(name string) ([]Variable, error) {
	var out []Variable
	for i, pg := range f.foot.PGs {
		has := false
		for _, vm := range pg.Vars {
			if vm.Name == name {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		_, _, vars, err := f.ReadPG(i)
		if err != nil {
			return nil, err
		}
		for _, v := range vars {
			if v.Name == name {
				out = append(out, v)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bp: variable %q not found in any PG", name)
	}
	return out, nil
}
