package telemetry

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanContextRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if !sc.Valid() {
		t.Fatalf("fresh context %v not valid", sc)
	}
	got, ok := ParseSpanContext(sc.String())
	if !ok || got != sc {
		t.Fatalf("ParseSpanContext(%q) = %v, %t; want %v, true", sc.String(), got, ok, sc)
	}
	for _, bad := range []string{"", "abc", ":", "abc:", ":def", "has space:def", "trace:span:extra"} {
		if _, ok := ParseSpanContext(bad); ok {
			t.Errorf("ParseSpanContext(%q) accepted", bad)
		}
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.SetError("boom")
	sp.End()
	if sp.Context().Valid() {
		t.Fatalf("nil span has valid context")
	}
	ctx, child := StartSpan(context.Background(), "work")
	if child != nil {
		t.Fatalf("StartSpan with no active span returned non-nil %v", child)
	}
	if SpanFromContext(ctx) != nil {
		t.Fatalf("context unexpectedly carries a span")
	}
}

func TestSpanTreeRecording(t *testing.T) {
	st := NewSpanStore("n1", 0, 0, time.Hour)
	root := st.StartRoot("http.request", "trace-1", SpanContext{})
	root.SetAttr("method", "GET")
	ctx := ContextWithSpan(context.Background(), root)
	ctx2, child := StartSpan(ctx, "shard.load")
	if SpanFromContext(ctx2) != child {
		t.Fatalf("child not active in derived context")
	}
	_, grand := StartSpan(ctx2, "batch.encode")
	grand.End()
	child.End()
	root.End()
	root.End() // idempotent: second End must not double-record

	spans := st.Trace("trace-1")
	if len(spans) != 3 {
		t.Fatalf("Trace returned %d spans, want 3: %+v", len(spans), spans)
	}
	byName := make(map[string]SpanData)
	for _, sp := range spans {
		byName[sp.Name] = sp
		if sp.TraceID != "trace-1" {
			t.Errorf("span %s trace %q, want trace-1", sp.Name, sp.TraceID)
		}
		if sp.Node != "n1" {
			t.Errorf("span %s node %q, want n1", sp.Name, sp.Node)
		}
	}
	if byName["shard.load"].Parent != byName["http.request"].SpanID {
		t.Errorf("shard.load parent %q, want root %q", byName["shard.load"].Parent, byName["http.request"].SpanID)
	}
	if byName["batch.encode"].Parent != byName["shard.load"].SpanID {
		t.Errorf("batch.encode parent %q, want shard.load %q", byName["batch.encode"].Parent, byName["shard.load"].SpanID)
	}
	if !byName["http.request"].Root {
		t.Errorf("http.request not marked root")
	}
	if byName["http.request"].Attrs["method"] != "GET" {
		t.Errorf("root attrs = %v", byName["http.request"].Attrs)
	}
	if got := st.Stats(); got.Recorded != 3 {
		t.Errorf("Stats().Recorded = %d, want 3", got.Recorded)
	}
	sums := st.Summaries()
	if len(sums) != 1 {
		t.Fatalf("Summaries() = %d rows, want 1: %+v", len(sums), sums)
	}
	if sums[0].Root != "http.request" || sums[0].Spans != 3 {
		t.Errorf("summary = %+v, want root http.request with 3 spans", sums[0])
	}
}

func TestStartRootAdoptsParentTrace(t *testing.T) {
	st := NewSpanStore("n2", 0, 0, time.Hour)
	parent := SpanContext{TraceID: "up-trace", SpanID: "aaaabbbbccccdddd"}
	root := st.StartRoot("http.request", "other-trace", parent)
	root.End()
	spans := st.Trace("up-trace")
	if len(spans) != 1 {
		t.Fatalf("got %d spans under parent trace, want 1", len(spans))
	}
	if spans[0].Parent != parent.SpanID {
		t.Errorf("root parent %q, want %q", spans[0].Parent, parent.SpanID)
	}
	if len(st.Trace("other-trace")) != 0 {
		t.Errorf("span recorded under the discarded trace ID")
	}
}

func TestTailSamplingKeepsSlowAndErrored(t *testing.T) {
	st := NewSpanStore("n1", 64, 4, 10*time.Millisecond)
	now := time.Now()

	// Boring root: fast and clean — must not be captured.
	st.Record(SpanData{TraceID: "fast", SpanID: "s1", Name: "http.request", Root: true, Start: now, End: now.Add(time.Millisecond)})
	// Slow root crosses the threshold.
	st.Record(SpanData{TraceID: "slow", SpanID: "s2", Name: "http.request", Root: true, Start: now, End: now.Add(50 * time.Millisecond)})
	// Fast but errored root.
	st.Record(SpanData{TraceID: "bad", SpanID: "s3", Name: "http.request", Root: true, Start: now, End: now.Add(time.Millisecond), Error: "boom"})

	if got := st.Stats().Notable; got != 2 {
		t.Fatalf("Stats().Notable = %d, want 2", got)
	}
	notable := make(map[string]bool)
	for _, ts := range st.Summaries() {
		notable[ts.TraceID] = ts.Notable
	}
	if notable["fast"] || !notable["slow"] || !notable["bad"] {
		t.Fatalf("notable flags = %v, want slow+bad only", notable)
	}
}

// TestNotableSurvivesRingPressure proves the tail-sampling contract:
// a captured slow trace remains fetchable after enough boring traffic
// has cycled the recent ring to evict every one of its spans.
func TestNotableSurvivesRingPressure(t *testing.T) {
	st := NewSpanStore("n1", spanStripes*4, 8, 10*time.Millisecond) // minimum rings: 4 slots per stripe
	now := time.Now()

	slowRoot := SpanData{TraceID: "slow-trace", SpanID: "root", Name: "http.request", Root: true,
		Start: now, End: now.Add(time.Second)}
	st.Record(SpanData{TraceID: "slow-trace", SpanID: "kid", Parent: "root", Name: "shard.load",
		Start: now, End: now.Add(time.Millisecond)})
	st.Record(slowRoot)

	// Flood every stripe until the slow trace's stripe has certainly
	// wrapped several times.
	for i := 0; i < spanStripes*4*8; i++ {
		id := fmt.Sprintf("boring-%d", i)
		st.Record(SpanData{TraceID: id, SpanID: id, Name: "http.request", Root: true, Start: now, End: now})
	}
	if st.Stats().Dropped == 0 {
		t.Fatalf("flood did not wrap the ring — test is not exercising eviction")
	}

	spans := st.Trace("slow-trace")
	if len(spans) != 2 {
		t.Fatalf("after flood Trace(slow-trace) = %d spans, want 2 (root+child): %+v", len(spans), spans)
	}
	var foundRoot, foundKid bool
	for _, sp := range spans {
		foundRoot = foundRoot || sp.SpanID == "root"
		foundKid = foundKid || sp.SpanID == "kid"
	}
	if !foundRoot || !foundKid {
		t.Fatalf("notable trace lost spans: root=%t kid=%t", foundRoot, foundKid)
	}

	// And the notable ring itself is bounded: drown it in slow traces.
	for i := 0; i < 32; i++ {
		id := fmt.Sprintf("alsoslow-%d", i)
		st.Record(SpanData{TraceID: id, SpanID: id, Name: "http.request", Root: true,
			Start: now, End: now.Add(time.Second)})
	}
	notable := 0
	for _, ts := range st.Summaries() {
		if ts.Notable {
			notable++
		}
	}
	if notable > 8 {
		t.Fatalf("notable ring grew to %d traces, cap is 8", notable)
	}
	if len(st.Trace("slow-trace")) != 0 {
		t.Fatalf("oldest notable trace not evicted by newer notables")
	}
}

func TestMergeTracesDeduplicates(t *testing.T) {
	now := time.Now()
	a := []SpanData{
		{TraceID: "t", SpanID: "1", Name: "http.request", Start: now.Add(time.Millisecond)},
		{TraceID: "t", SpanID: "2", Name: "proxy.forward", Start: now.Add(2 * time.Millisecond)},
	}
	b := []SpanData{
		{TraceID: "t", SpanID: "2", Name: "proxy.forward", Start: now.Add(2 * time.Millisecond)},
		{TraceID: "t", SpanID: "3", Name: "http.request", Start: now},
	}
	got := MergeTraces(a, b)
	if len(got) != 3 {
		t.Fatalf("merged %d spans, want 3: %+v", len(got), got)
	}
	if got[0].SpanID != "3" || got[1].SpanID != "1" || got[2].SpanID != "2" {
		t.Fatalf("merge not sorted by start: %+v", got)
	}
}

func TestSpanStoreNames(t *testing.T) {
	st := NewSpanStore("n1", 0, 0, time.Hour)
	for _, name := range []string{"b.second", "a.first", "b.second"} {
		sp := st.StartRoot(name, NewTraceID(), SpanContext{})
		sp.End()
	}
	got := st.Names()
	want := []string{"a.first", "b.second"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

// TestSpanStoreConcurrency hammers every public store surface at once
// under the race detector: span start/attr/end on shared traces,
// raw Records, trace reads, summary/name/stat scrapes.
func TestSpanStoreConcurrency(t *testing.T) {
	st := NewSpanStore("n1", 128, 8, time.Microsecond) // tiny slow => constant tail-sampling
	const workers = 8
	const iters = 200
	traces := []string{"shared-a", "shared-b", "shared-c"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				trace := traces[(w+i)%len(traces)]
				root := st.StartRoot("http.request", trace, SpanContext{})
				root.SetAttr("worker", "w")
				ctx := ContextWithSpan(context.Background(), root)
				_, child := StartSpan(ctx, "shard.load")
				child.SetAttr("i", "x")
				if i%3 == 0 {
					child.SetError("induced")
				}
				child.End()
				st.Record(SpanData{TraceID: trace, SpanID: NewSpanID(), Parent: root.Context().SpanID,
					Name: "batch.encode", Start: time.Now(), End: time.Now()})
				root.End()
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st.Trace(traces[i%len(traces)])
				st.Summaries()
				st.Names()
				st.Stats()
			}
		}()
	}
	wg.Wait()
	stats := st.Stats()
	if want := uint64(workers * iters * 3); stats.Recorded != want {
		t.Fatalf("Stats().Recorded = %d, want %d", stats.Recorded, want)
	}
}
