// Package provenance captures lineage for data-readiness pipelines. The
// paper (§5, "Provenance and Reproducibility") calls out that establishing
// traceable links between raw data, preprocessing steps, and trained models
// is essential but remains ad hoc; this package is the reproduction's
// ProvEn-style capture system: a content-hash lineage DAG plus an
// append-only audit log, recorded at every pipeline stage.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// ArtifactID identifies an artifact by the SHA-256 of its content.
type ArtifactID string

// HashBytes computes the ArtifactID of raw content.
func HashBytes(b []byte) ArtifactID {
	sum := sha256.Sum256(b)
	return ArtifactID(hex.EncodeToString(sum[:]))
}

// HashFloat64s hashes a numeric payload deterministically (NaN payloads
// hash by their bit pattern, so hashes are stable).
func HashFloat64s(vals []float64) ArtifactID {
	h := sha256.New()
	var buf [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return ArtifactID(hex.EncodeToString(h.Sum(nil)))
}

// Activity records one transformation: inputs → outputs under named
// parameters, attributed to an agent (pipeline stage).
type Activity struct {
	ID       string            `json:"id"`
	Name     string            `json:"name"`
	Agent    string            `json:"agent"`
	Params   map[string]string `json:"params,omitempty"`
	Inputs   []ArtifactID      `json:"inputs"`
	Outputs  []ArtifactID      `json:"outputs"`
	Started  time.Time         `json:"started"`
	Finished time.Time         `json:"finished"`
}

// Tracker is a thread-safe lineage store. The zero value is not usable;
// call NewTracker.
type Tracker struct {
	mu         sync.Mutex
	activities []Activity
	producers  map[ArtifactID]int // artifact -> index of producing activity
	labels     map[ArtifactID]string
	seq        int
	clock      func() time.Time
}

// NewTracker returns an empty lineage tracker.
func NewTracker() *Tracker {
	return &Tracker{
		producers: make(map[ArtifactID]int),
		labels:    make(map[ArtifactID]string),
		clock:     time.Now,
	}
}

// SetClock overrides the tracker's time source (tests, reproducible runs).
func (t *Tracker) SetClock(clock func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = clock
}

// Label attaches a human-readable name to an artifact.
func (t *Tracker) Label(id ArtifactID, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.labels[id] = name
}

// Record appends one activity to the lineage. Started/Finished default to
// the tracker clock when zero.
func (t *Tracker) Record(a Activity) (string, error) {
	if a.Name == "" {
		return "", errors.New("provenance: activity needs a name")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	a.ID = fmt.Sprintf("act-%06d", t.seq)
	now := t.clock()
	if a.Started.IsZero() {
		a.Started = now
	}
	if a.Finished.IsZero() {
		a.Finished = now
	}
	idx := len(t.activities)
	t.activities = append(t.activities, a)
	for _, out := range a.Outputs {
		t.producers[out] = idx
	}
	return a.ID, nil
}

// Activities returns a copy of the audit log in record order.
func (t *Tracker) Activities() []Activity {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Activity(nil), t.activities...)
}

// Lineage returns every activity on the transitive production path of the
// artifact, oldest first. Unknown artifacts yield an empty slice (raw
// inputs have no producers).
func (t *Tracker) Lineage(id ArtifactID) []Activity {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[int]bool)
	var order []int
	var visit func(ArtifactID)
	visit = func(a ArtifactID) {
		idx, ok := t.producers[a]
		if !ok || seen[idx] {
			return
		}
		seen[idx] = true
		for _, in := range t.activities[idx].Inputs {
			visit(in)
		}
		order = append(order, idx)
	}
	visit(id)
	out := make([]Activity, len(order))
	for i, idx := range order {
		out[i] = t.activities[idx]
	}
	return out
}

// Verify checks referential integrity: every non-root input of every
// activity must either be produced by an earlier activity or be a declared
// raw artifact. Roots are artifacts with labels but no producer.
func (t *Tracker) Verify() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	known := make(map[ArtifactID]bool)
	for id := range t.labels {
		known[id] = true
	}
	for i, a := range t.activities {
		for _, in := range a.Inputs {
			if _, produced := t.producers[in]; !produced && !known[in] {
				return fmt.Errorf("provenance: activity %s (%s) consumes unknown artifact %s",
					a.ID, a.Name, truncate(string(in)))
			}
			if idx, produced := t.producers[in]; produced && idx >= i {
				// Self-production or future-production: the input's
				// producer must precede the consumer.
				if idx > i || containsID(t.activities[idx].Outputs, in) && idx == i {
					return fmt.Errorf("provenance: activity %s consumes artifact produced at or after it", a.ID)
				}
			}
		}
		for _, out := range a.Outputs {
			known[out] = true
		}
	}
	return nil
}

func containsID(ids []ArtifactID, id ArtifactID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func truncate(s string) string {
	if len(s) > 12 {
		return s[:12] + "…"
	}
	return s
}

// Report is a serializable provenance export (the "datasheet" lineage
// section).
type Report struct {
	Artifacts  map[string]string `json:"artifacts"` // id -> label
	Activities []Activity        `json:"activities"`
}

// Export produces a deterministic JSON lineage report.
func (t *Tracker) Export() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := Report{Artifacts: make(map[string]string, len(t.labels))}
	for id, label := range t.labels {
		r.Artifacts[string(id)] = label
	}
	r.Activities = append([]Activity(nil), t.activities...)
	return json.MarshalIndent(&r, "", "  ")
}

// Import loads a report back into a fresh tracker (for cross-run audits).
func Import(b []byte) (*Tracker, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("provenance: decode report: %w", err)
	}
	t := NewTracker()
	for id, label := range r.Artifacts {
		t.labels[ArtifactID(id)] = label
	}
	// Keep original order (IDs are act-%06d so sortable).
	sort.Slice(r.Activities, func(i, j int) bool { return r.Activities[i].ID < r.Activities[j].ID })
	for i, a := range r.Activities {
		t.activities = append(t.activities, a)
		for _, out := range a.Outputs {
			t.producers[out] = i
		}
	}
	t.seq = len(r.Activities)
	return t, nil
}
