// materials_gnn reproduces the HydraGNN/OMat24-style materials
// preparation: parse POSCAR structures, build periodic cutoff graphs,
// normalize descriptors against dataset statistics, and shard the train
// split into an ADIOS-style BP container written by simulated parallel
// ranks — then read the container back the way a GNN trainer would.
package main

import (
	"fmt"
	"log"

	"repro/internal/formats/bp"
	"repro/internal/materials"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	structs, err := materials.Synthesize(materials.SynthConfig{
		Structures: 80, MinAtoms: 6, MaxAtoms: 20, ImbalanceRatio: 6, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	counts := materials.ClassCounts(structs)
	fmt.Printf("DFT-like archive: %d structures, class counts %v\n", len(structs), counts)

	poscars := make([]string, len(structs))
	for i, s := range structs {
		poscars[i] = s.ToPOSCAR()
	}
	sink := shard.NewMemSink()
	p, err := materials.NewPipeline(materials.Config{Cutoff: 4, Workers: 8, Ranks: 4, Seed: 17}, sink)
	if err != nil {
		log.Fatal(err)
	}
	ds := materials.NewDataset("omat-demo", poscars)
	snaps, err := p.Run(ds)
	if err != nil {
		log.Fatal(err)
	}
	prod := ds.Payload.(*materials.Product)

	edges, nodes := 0, 0
	for _, g := range prod.Graphs {
		edges += g.NumEdges()
		nodes += g.NumNodes()
	}
	fmt.Printf("graphs: %d (avg %.1f nodes, %.1f edges)\n",
		len(prod.Graphs), float64(nodes)/float64(len(prod.Graphs)), float64(edges)/float64(len(prod.Graphs)))
	fmt.Printf("train split imbalance: %.1f:1 (stratified split preserves the archive's skew)\n", prod.Imbalance)
	fmt.Printf("final readiness: %s\n", snaps[len(snaps)-1].Assessment.Level)

	// Consume the BP container like HydraGNN's reader: gather energies
	// across all process groups and check extensivity.
	f, err := bp.Open(prod.BP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBP container: %d bytes, %d process groups from 4 ranks\n", len(prod.BP), len(f.PGs()))
	energies, err := f.ReadVar("energy")
	if err != nil {
		log.Fatal(err)
	}
	nodesVars, err := f.ReadVar("node_features")
	if err != nil {
		log.Fatal(err)
	}
	sumE, sumAtoms := 0.0, 0
	for i := range energies {
		sumE += energies[i].Data[0]
		sumAtoms += nodesVars[i].Shape[0]
	}
	fmt.Printf("train energies: %d graphs, mean per-atom energy %.3f eV\n",
		len(energies), sumE/float64(sumAtoms))
	fmt.Printf("durable shard set: %d shards, %d PG records (serving/replay artifact)\n",
		len(prod.Manifest.Shards), prod.Manifest.TotalRecords())
	fmt.Println("\n" + p.Collector.Report())
}
