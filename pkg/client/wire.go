// BatchWire: the single client-side union of every wire kind's batch
// payload. Both wire formats decode into it — NDJSON lines unmarshal
// directly, binary frames are converted from the codec's typed records
// — so generic tooling handles any domain's stream in either format.
package client

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/loader"
)

// StreamError is a failure the server reported in-band (an error line
// or error frame). It is terminal — reconnecting with the same cursor
// hits the same condition — and is re-exported here so SDK consumers
// can errors.As against it without reaching into internal packages.
type StreamError = domain.StreamError

// Wire format selectors for Client / StreamOptions.
const (
	// WireAuto asks for frames and falls back to NDJSON when the
	// server does not negotiate them — the default.
	WireAuto = "auto"
	// WireNDJSON pins the debuggable NDJSON stream.
	WireNDJSON = domain.WireNDJSON
	// WireFrame requires the binary frame stream; opening fails
	// against a server that cannot serve it.
	WireFrame = domain.WireFrame
)

// Graph is one materials wire record: a periodic cutoff graph with
// ragged per-graph tensors flattened row-major alongside their shapes.
// Clients index node_features[n*feature_dim+f] and read edges as
// interleaved (src, dst) pairs. The field order matches the server's
// NDJSON emission exactly, so unmarshal → re-marshal reproduces a
// graph object byte-for-byte.
type Graph struct {
	Nodes        int       `json:"nodes"`
	FeatureDim   int       `json:"feature_dim"`
	NodeFeatures []float64 `json:"node_features"`
	Edges        []int64   `json:"edges"`
	EdgeLengths  []float64 `json:"edge_lengths"`
	Energy       float64   `json:"energy"`
	ClassID      int64     `json:"class_id"`
}

// BatchWire is one streamed batch of /v1/jobs/{id}/batches — the union
// of every kind's payload schema. The field order matches the per-kind
// server emission exactly, so unmarshal → re-marshal reproduces an
// NDJSON line byte-for-byte (the resume tests and clustersmoke rely on
// this). Exactly one payload group is populated:
//
//	kind "samples":          features, labels
//	kind "fusion_windows":   labels, signals, shots, starts, horizons
//	kind "materials_graphs": graphs
//
// The cursor names the position after this batch: pass it back as
// ?cursor=… (or StreamOptions.Cursor) to resume the stream exactly
// there after a disconnect.
type BatchWire struct {
	Batch    int         `json:"batch"`
	Cursor   string      `json:"cursor"`
	Kind     string      `json:"kind,omitempty"`
	Features [][]float32 `json:"features,omitempty"`
	Labels   []int64     `json:"labels,omitempty"`
	Signals  [][]float32 `json:"signals,omitempty"`
	Shots    []int64     `json:"shots,omitempty"`
	Starts   []int64     `json:"starts,omitempty"`
	Horizons []float32   `json:"horizons,omitempty"`
	Graphs   []Graph     `json:"graphs,omitempty"`
	Error    string      `json:"error,omitempty"`
}

// Count returns the number of records in the batch, whatever its kind.
func (w *BatchWire) Count() int {
	if len(w.Graphs) > 0 {
		return len(w.Graphs)
	}
	return len(w.Labels)
}

// Validate checks the batch's per-kind shape invariants.
func (w *BatchWire) Validate() error {
	if w.Error != "" {
		return &domain.StreamError{Msg: w.Error}
	}
	switch w.Kind {
	case domain.KindSamples:
		if len(w.Features) == 0 || len(w.Features) != len(w.Labels) {
			return fmt.Errorf("%d feature rows vs %d labels", len(w.Features), len(w.Labels))
		}
	case domain.KindFusionWindows:
		if len(w.Signals) == 0 || len(w.Signals) != len(w.Labels) ||
			len(w.Shots) != len(w.Labels) || len(w.Starts) != len(w.Labels) ||
			len(w.Horizons) != len(w.Labels) {
			return fmt.Errorf("ragged fusion batch: %d signals / %d labels / %d shots / %d starts / %d horizons",
				len(w.Signals), len(w.Labels), len(w.Shots), len(w.Starts), len(w.Horizons))
		}
	case domain.KindMaterialsGraphs:
		if len(w.Graphs) == 0 {
			return fmt.Errorf("empty graph batch")
		}
	default:
		return fmt.Errorf("unknown wire kind %q", w.Kind)
	}
	return nil
}

// fromRecords converts one decoded frame (header + codec-typed
// records) into the BatchWire union.
func fromRecords(h domain.BatchHeader, recs []any) (*BatchWire, error) {
	w := &BatchWire{Batch: h.Batch, Cursor: h.Cursor, Kind: h.Kind}
	switch h.Kind {
	case domain.KindSamples:
		w.Features = make([][]float32, len(recs))
		w.Labels = make([]int64, len(recs))
		for i, r := range recs {
			s, ok := r.(*loader.Sample)
			if !ok {
				return nil, fmt.Errorf("frame record %d is %T, want sample", i, r)
			}
			w.Features[i] = s.Features
			w.Labels[i] = int64(s.Label)
		}
	case domain.KindFusionWindows:
		w.Labels = make([]int64, len(recs))
		w.Signals = make([][]float32, len(recs))
		w.Shots = make([]int64, len(recs))
		w.Starts = make([]int64, len(recs))
		w.Horizons = make([]float32, len(recs))
		for i, r := range recs {
			f, ok := r.(*domain.FusionWindow)
			if !ok {
				return nil, fmt.Errorf("frame record %d is %T, want fusion window", i, r)
			}
			w.Labels[i] = f.Label
			w.Signals[i] = f.Signal
			w.Shots[i] = f.Shot
			w.Starts[i] = f.Start
			w.Horizons[i] = f.Horizon
		}
	case domain.KindMaterialsGraphs:
		w.Graphs = make([]Graph, len(recs))
		for i, r := range recs {
			g, ok := r.(*domain.WireGraph)
			if !ok {
				return nil, fmt.Errorf("frame record %d is %T, want graph", i, r)
			}
			w.Graphs[i] = Graph{
				Nodes:        g.Nodes,
				FeatureDim:   g.FeatureDim,
				NodeFeatures: g.NodeFeatures,
				Edges:        g.Edges,
				EdgeLengths:  g.EdgeLengths,
				Energy:       g.Energy,
				ClassID:      g.ClassID,
			}
		}
	default:
		return nil, fmt.Errorf("frame with unknown wire kind %q", h.Kind)
	}
	return w, nil
}
