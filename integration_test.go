// Cross-module integration tests: archetype pipelines running over the
// simulated parallel filesystem, loader read-back, provenance audits, and
// failure injection between pipeline stages.
package repro

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/anonymize"
	"repro/internal/bio"
	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/fusion"
	"repro/internal/loader"
	"repro/internal/materials"
	"repro/internal/parfs"
	"repro/internal/pipeline"
	"repro/internal/provenance"
	"repro/internal/quality"
	"repro/internal/registry"
	"repro/internal/shard"
	"repro/internal/tensor"
)

// newFastFS returns a parfs with accounting but no real sleeping, so
// integration tests stay fast.
func newFastFS(t *testing.T) *parfs.FS {
	t.Helper()
	fs, err := parfs.New(parfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs.SetSleep(func(time.Duration) {})
	return fs
}

// TestClimateOnParallelFS runs the climate archetype with shards landing
// on the simulated striped filesystem, then trains-side reads them back.
func TestClimateOnParallelFS(t *testing.T) {
	fs := newFastFS(t)
	field, err := climate.Synthesize(climate.SynthConfig{Months: 24, Lat: 16, Lon: 32, MissingRate: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := field.ToNetCDF()
	if err != nil {
		t.Fatal(err)
	}
	p, err := registry.New(core.Climate, fs, climate.Config{
		TargetLat: 8, TargetLon: 16, Method: climate.Conservative, Workers: 4,
		ShardTargetBytes: 4 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds := climate.NewDataset("parfs-climate", raw)
	snaps, err := p.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if snaps[len(snaps)-1].Assessment.Level != core.AIReady {
		t.Fatalf("level=%v", snaps[len(snaps)-1].Assessment.Level)
	}
	prod := ds.Payload.(*climate.Product)

	// Loader streams straight off the parallel FS.
	l, err := loader.New(fs, prod.Manifest, loader.Options{BatchSize: 4, ShuffleBuffer: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for b := l.Next(); b != nil; b = l.Next() {
		n += b.Len()
	}
	if l.Err() != nil {
		t.Fatal(l.Err())
	}
	if n != len(prod.Split.Train) {
		t.Fatalf("loader read %d, train=%d", n, len(prod.Split.Train))
	}
	// The FS accounted real traffic on multiple OSTs.
	stats := fs.Stats()
	if stats.Bytes == 0 || stats.Ops == 0 {
		t.Fatalf("no simulated I/O recorded: %+v", stats)
	}
	// Provenance verifies end to end.
	if err := p.Tracker.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestShardCorruptionSurfacesThroughLoader injects corruption between the
// pipeline and the trainer; the loader must fail loudly, not deliver
// silent garbage.
func TestShardCorruptionSurfacesThroughLoader(t *testing.T) {
	sink := shard.NewMemSink()
	samples := make([]*loader.Sample, 50)
	for i := range samples {
		samples[i] = &loader.Sample{Features: []float32{float32(i)}, Label: int32(i)}
	}
	m, err := loader.WriteSamples(sink, shard.Options{Prefix: "x", TargetBytes: 256}, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one shard by lying about its checksum in the manifest
	// (equivalent to bit rot on disk).
	m.Shards[1].SHA256 = "deadbeef" + m.Shards[1].SHA256[8:]
	l, err := loader.New(sink, m, loader.Options{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for b := l.Next(); b != nil; b = l.Next() {
	}
	if l.Err() == nil {
		t.Fatal("corruption not surfaced")
	}
}

// TestFileRoundTripThroughOS exercises the gendata-style path: raw files
// on disk, re-ingested from disk.
func TestFileRoundTripThroughOS(t *testing.T) {
	dir := t.TempDir()

	// Climate NetCDF file.
	field, err := climate.Synthesize(climate.SynthConfig{Months: 6, Lat: 8, Lon: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	nc, err := field.ToNetCDF()
	if err != nil {
		t.Fatal(err)
	}
	ncPath := filepath.Join(dir, "tas.nc")
	if err := os.WriteFile(ncPath, nc, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(ncPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := climate.FromNetCDF(back, "tas"); err != nil {
		t.Fatal(err)
	}

	// Materials POSCAR files.
	structs, err := materials.Synthesize(materials.SynthConfig{Structures: 5, MinAtoms: 4, MaxAtoms: 8, ImbalanceRatio: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range structs {
		path := filepath.Join(dir, s.ID+".poscar")
		if err := os.WriteFile(path, []byte(s.ToPOSCAR()), 0o644); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := materials.ParsePOSCAR(string(data))
		if err != nil {
			t.Fatal(err)
		}
		if got.NumAtoms() != s.NumAtoms() {
			t.Fatalf("%s atoms %d vs %d", s.ID, got.NumAtoms(), s.NumAtoms())
		}
	}

	// Bio FASTA file.
	cohort, err := bio.Synthesize(bio.SynthConfig{Subjects: 4, SeqLen: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fPath := filepath.Join(dir, "cohort.fasta")
	if err := os.WriteFile(fPath, []byte(cohort.ToFASTA()), 0o600); err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(fPath)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := bio.ParseFASTA(string(fb))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 {
		t.Fatalf("seqs=%d", len(seqs))
	}
}

// TestFusionSciH5AlternateOutput checks Table 1's "TFRecord/HDF5" by
// producing both containers from one campaign and re-windowing from the
// SciH5 copy.
func TestFusionSciH5AlternateOutput(t *testing.T) {
	st, err := fusion.SynthesizeCampaign(fusion.SynthConfig{Shots: 6, DisruptionRate: 0.5, FlattopSeconds: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var aligned []*fusion.AlignedShot
	for _, num := range st.Shots() {
		s, _ := st.Get(num)
		a, err := fusion.Align(s, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		aligned = append(aligned, a)
	}
	h5, err := fusion.ExportSciH5(aligned)
	if err != nil {
		t.Fatal(err)
	}
	back, err := fusion.ImportSciH5(h5)
	if err != nil {
		t.Fatal(err)
	}
	// Windows from the original and the re-imported copy agree in count
	// and labels.
	for i := range aligned {
		w1, err := fusion.Windowize(aligned[i], 30, 15, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := fusion.Windowize(back[i], 30, 15, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if len(w1) != len(w2) {
			t.Fatalf("shot %d windows %d vs %d", i, len(w1), len(w2))
		}
		for k := range w1 {
			if w1[k].Label != w2[k].Label {
				t.Fatalf("shot %d window %d label %d vs %d", i, k, w1[k].Label, w2[k].Label)
			}
		}
	}
}

// TestBioPipelineOnParallelFS runs the secure bio path with sealed shards
// landing on the parallel FS, then decrypts from there.
func TestBioPipelineOnParallelFS(t *testing.T) {
	fs := newFastFS(t)
	cohort, err := bio.Synthesize(bio.SynthConfig{Subjects: 20, SeqLen: 256, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	key := bytes.Repeat([]byte{9}, 32)
	p, err := registry.New(core.BioHealth, fs, registry.BioSecrets{
		EncryptionKey:   key,
		PseudonymSecret: []byte("integration-pseudonym-secret"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := bio.NewDataset("parfs-bio", cohort.ToFASTA(), cohort.Clinical)
	if _, err := p.Run(ds); err != nil {
		t.Fatal(err)
	}
	prod := ds.Payload.(*bio.Product)
	for _, info := range prod.Manifest.Shards {
		sealed, err := fs.ReadFile(info.Name + ".enc")
		if err != nil {
			t.Fatal(err)
		}
		plain, err := anonymize.DecryptShard(key, info.Name, sealed)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(plain)) != info.StoredBytes {
			t.Fatalf("shard %s: %d plaintext bytes, manifest says %d", info.Name, len(plain), info.StoredBytes)
		}
	}
}

// TestProvenanceExportAcrossPipelines merges provenance from two domain
// runs and audits the combined report.
func TestProvenanceExportAcrossPipelines(t *testing.T) {
	fs := newFastFS(t)
	field, _ := climate.Synthesize(climate.SynthConfig{Months: 6, Lat: 8, Lon: 16, Seed: 9})
	raw, _ := field.ToNetCDF()
	p, err := registry.New(core.Climate, fs, climate.Config{TargetLat: 4, TargetLon: 8, Workers: 2, ShardTargetBytes: 4 << 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ds := climate.NewDataset("prov", raw)
	if _, err := p.Run(ds); err != nil {
		t.Fatal(err)
	}
	exported, err := p.Tracker.Export()
	if err != nil {
		t.Fatal(err)
	}
	imported, err := provenance.Import(exported)
	if err != nil {
		t.Fatal(err)
	}
	if err := imported.Verify(); err != nil {
		t.Fatal(err)
	}
	lin := imported.Lineage(ds.ID())
	if len(lin) != len(p.Stages()) {
		t.Fatalf("lineage %d vs %d stages", len(lin), len(p.Stages()))
	}
}

// TestQualityFeedbackLoop exercises the Fig. 1 feedback edge with a
// quality gate instead of labels: a dataset with heavy outliers is
// iteratively winsorized until its datasheet quality score clears the
// release threshold.
func TestQualityFeedbackLoop(t *testing.T) {
	// Values concentrated at 1 with gross outliers and some missing.
	vals := make([]float64, 2000)
	for i := range vals {
		switch {
		case i%97 == 0:
			vals[i] = 1e6 // gross outliers
		case i%53 == 0:
			vals[i] = nan()
		default:
			vals[i] = float64(i%100) * 0.7
		}
	}
	ds := pipeline.NewDataset("noisy", core.Climate, vals)

	refine := pipeline.StageFunc{StageName: "winsorize", StageKind: core.Transform,
		Fn: func(d *pipeline.Dataset) error {
			xs := d.Payload.([]float64)
			x, err := tensorFrom(xs)
			if err != nil {
				return err
			}
			if _, _, err := quality.FillMissing(x, quality.FillMedian, 0); err != nil {
				return err
			}
			if _, err := quality.WinsorizeOutliers(xs, quality.IQR, 1.5); err != nil {
				return err
			}
			return nil
		}}

	goodEnough := func(d *pipeline.Dataset) bool {
		sheet, err := quality.BuildDatasheet("noisy", d.Payload.([]float64), nil)
		if err != nil {
			return false
		}
		return sheet.QualityScore() > 0.9
	}
	if goodEnough(ds) {
		t.Fatal("dataset should start below the quality gate")
	}
	rounds, err := pipeline.Iterate(ds, refine, goodEnough, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 || rounds == 10 {
		t.Fatalf("rounds=%d, want convergence in (0,10)", rounds)
	}
	if !goodEnough(ds) {
		t.Fatal("quality gate not reached")
	}
}

func nan() float64 { return math.NaN() }

func tensorFrom(xs []float64) (*tensor.Tensor, error) {
	return tensor.FromSlice(xs, len(xs))
}
