// Command draid serves dataset readiness as a facility service: domain
// templates from the registry, asynchronous pipeline jobs on a bounded
// worker pool, trained-side batch streaming from completed jobs' shard
// sets, and Prometheus-style metrics.
//
// Usage:
//
//	draid                          # listen on :8080 with 4 workers, in-memory
//	draid -addr :9000 -workers 8 -cache-mb 256
//	draid -data-dir /var/lib/draid -job-ttl 24h -max-jobs 100
//
// With -data-dir, completed jobs' shard sets are written to
// <data-dir>/jobs/<id> with an atomic MANIFEST.json and every job
// transition is appended to <data-dir>/jobs.log; a restarted draid
// replays the log and re-serves completed jobs from disk. -job-ttl and
// -max-jobs evict idle completed jobs (deleting their shard
// directories) so retained state stays bounded.
//
// API:
//
//	GET  /v1/templates               list registered domain templates
//	POST /v1/jobs                    submit {"domain":"climate", ...}
//	GET  /v1/jobs                    list jobs
//	GET  /v1/jobs/{id}               job state + readiness trajectory
//	GET  /v1/jobs/{id}/provenance    lineage report (JSON)
//	GET  /v1/jobs/{id}/batches       stream NDJSON training batches
//	     ?batch_size=&max_batches=&cursor=<shard>:<record>  (resume point)
//	GET  /metrics                    serving + pipeline metrics
//	GET  /healthz                    liveness
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "concurrent pipeline executions")
	queueDepth := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	cacheMB := flag.Int64("cache-mb", 128, "decoded-shard LRU cache budget in MiB (0 disables)")
	dataDir := flag.String("data-dir", "", "durable root for shard sets + job log (empty keeps jobs in memory)")
	jobTTL := flag.Duration("job-ttl", 0, "evict completed jobs idle this long, deleting their shards (0 disables)")
	maxJobs := flag.Int("max-jobs", 0, "max retained completed jobs; least recently served evicted first (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	flag.Parse()
	log.SetFlags(0)

	s, err := server.New(server.Options{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		CacheBytes: *cacheMB << 20,
		DataDir:    *dataDir,
		JobTTL:     *jobTTL,
		MaxJobs:    *maxJobs,
	})
	if err != nil {
		log.Fatalf("draid: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	durability := "in-memory jobs"
	if *dataDir != "" {
		durability = "data dir " + *dataDir
	}
	log.Printf("draid: listening on %s (%d workers, %d MiB shard cache, %s)", *addr, *workers, *cacheMB, durability)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("draid: %v", err)
		}
	case got := <-sig:
		log.Printf("draid: %v — draining (up to %s)", got, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("draid: shutdown: %v", err)
		}
		s.Close()
		log.Printf("draid: stopped")
	}
}
