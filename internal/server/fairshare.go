// Weighted-fair bandwidth sharing for batch streams. With
// -serve-budget-kbps set, the server holds ONE global byte budget and
// splits it hierarchically: first across the tenants with at least one
// active stream, proportionally to their configured weights, then
// evenly across each tenant's streams. A lone tenant gets the whole
// budget; a second tenant opening a stream instantly halves it (at
// equal weights) — no idle reservation, no per-stream config. Each
// stream's pacer re-reads its fair share on every pace call, so rates
// adapt mid-stream as streams open and close.
package server

import "sync"

// fairShare tracks active streams per tenant and computes each
// stream's current fair rate from the global budget.
type fairShare struct {
	budget float64 // bytes per second, the global pool

	mu      sync.Mutex
	streams map[string]*tenantStreams // tenant ID ("" = unauthenticated) -> live streams
	active  int                       // total active streams, for the gauge
}

type tenantStreams struct {
	weight  int
	streams int
}

func newFairShare(budgetBytes int64) *fairShare {
	return &fairShare{
		budget:  float64(budgetBytes),
		streams: make(map[string]*tenantStreams),
	}
}

// acquire registers one stream for a tenant and returns the stream's
// dynamic rate function plus a release callback for stream end. The
// rate function is safe to call concurrently and reflects the live
// stream population at each call.
func (f *fairShare) acquire(tenantID string, weight int) (rate func() float64, release func()) {
	if weight <= 0 {
		weight = 1
	}
	f.mu.Lock()
	ts := f.streams[tenantID]
	if ts == nil {
		ts = &tenantStreams{}
		f.streams[tenantID] = ts
	}
	// The latest-seen weight wins; weights come from one registry, so
	// concurrent streams of a tenant always agree anyway.
	ts.weight = weight
	ts.streams++
	f.active++
	f.mu.Unlock()

	rate = func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		totalWeight := 0
		for _, t := range f.streams {
			if t.streams > 0 {
				totalWeight += t.weight
			}
		}
		if totalWeight == 0 || ts.streams == 0 {
			return f.budget // released stream draining its last pace call
		}
		tenantShare := f.budget * float64(ts.weight) / float64(totalWeight)
		return tenantShare / float64(ts.streams)
	}
	var once sync.Once
	release = func() {
		once.Do(func() {
			f.mu.Lock()
			ts.streams--
			f.active--
			if ts.streams <= 0 {
				delete(f.streams, tenantID)
			}
			f.mu.Unlock()
		})
	}
	return rate, release
}

// activeStreams reports the live stream count (the
// draid_tenant_active_streams gauge).
func (f *fairShare) activeStreams() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.active
}

// newDynamicPacer returns a pacer whose rate is re-read from rateFn on
// every pace call: the weighted-fair share moves as streams open and
// close, and the bucket follows without restarting the stream.
func newDynamicPacer(rateFn func() float64) *pacer {
	p := newPacer(int64(rateFn()))
	p.rateFn = rateFn
	return p
}

// pacerBurst is the bucket capacity for a rate: a quarter-second of
// rate, clamped to [4 KiB, 256 KiB], so pacing engages quickly without
// punishing tiny responses.
func pacerBurst(rate float64) float64 {
	burst := rate / 4
	if burst < 4<<10 {
		burst = 4 << 10
	}
	if burst > 256<<10 {
		burst = 256 << 10
	}
	return burst
}
