// Node lock files: coordination for multiple draid nodes sharing one
// data directory on a parallel filesystem. Each node registers itself
// by exclusively creating <dir>/<id>.lock and heartbeating its mtime;
// a second process claiming the same node ID fails fast instead of
// interleaving writes into the same job log, and a lock whose heartbeat
// stopped (a SIGKILLed node) goes stale and can be reclaimed.
package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// NodeLock is a held per-node lock file. Release it with Release.
type NodeLock struct {
	path string
	f    *os.File

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// ErrNodeLocked reports that another live process holds the node ID.
var ErrNodeLocked = errors.New("shard: node ID is locked by a live process")

// AcquireNodeLock exclusively creates <dir>/<id>.lock (creating dir if
// needed), writes payload into it for operators, and heartbeats the
// file's mtime every staleAfter/4. An existing lock whose mtime is
// older than staleAfter is presumed abandoned by a killed process and
// is reclaimed; a fresh one returns ErrNodeLocked. staleAfter <= 0
// defaults to 10s.
func AcquireNodeLock(dir, id, payload string, staleAfter time.Duration) (*NodeLock, error) {
	if id == "" {
		return nil, errors.New("shard: empty node ID")
	}
	if staleAfter <= 0 {
		staleAfter = 10 * time.Second
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: create lock dir: %w", err)
	}
	path := filepath.Join(dir, id+".lock")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if os.IsExist(err) {
		fi, serr := os.Stat(path)
		if serr == nil && time.Since(fi.ModTime()) <= staleAfter {
			return nil, fmt.Errorf("%w: %s (heartbeat %s ago)", ErrNodeLocked, path, time.Since(fi.ModTime()).Round(time.Millisecond))
		}
		// Stale (or vanished between the open and the stat): reclaim.
		// The remove+retry is not atomic, but two processes racing for
		// the same node ID is exactly the operator error the fresh-lock
		// branch above rejects; staleness only arises once the previous
		// holder is dead.
		_ = os.Remove(path)
		f, err = os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	}
	if err != nil {
		return nil, fmt.Errorf("shard: acquire node lock %s: %w", path, err)
	}
	if _, err := f.WriteString(payload + "\n"); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("shard: write node lock: %w", err)
	}
	_ = f.Sync()
	l := &NodeLock{path: path, f: f, stop: make(chan struct{})}
	interval := staleAfter / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	l.wg.Add(1)
	go l.heartbeat(interval)
	return l, nil
}

func (l *NodeLock) heartbeat(interval time.Duration) {
	defer l.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			now := time.Now()
			_ = os.Chtimes(l.path, now, now)
		}
	}
}

// Path returns the lock file location.
func (l *NodeLock) Path() string { return l.path }

// Release stops the heartbeat and removes the lock file. Safe to call
// more than once.
func (l *NodeLock) Release() error {
	var err error
	l.once.Do(func() {
		close(l.stop)
		l.wg.Wait()
		cerr := l.f.Close()
		rerr := os.Remove(l.path)
		if cerr != nil {
			err = cerr
		} else if rerr != nil {
			err = rerr
		}
	})
	return err
}

// ListNodeLocks returns the node IDs currently holding lock files under
// dir, newest heartbeat first — the fleet roster as seen from the
// shared filesystem.
func ListNodeLocks(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	type row struct {
		id string
		mt time.Time
	}
	var rows []row
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".lock" {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		rows = append(rows, row{id: name[:len(name)-len(".lock")], mt: fi.ModTime()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mt.After(rows[j].mt) })
	ids := make([]string, len(rows))
	for i := range rows {
		ids[i] = rows[i].id
	}
	return ids
}
