package augment

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func grid(t *testing.T, vals []float64, h, w int) *tensor.Tensor {
	t.Helper()
	x, err := tensor.FromSlice(vals, h, w)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestRotate90Once(t *testing.T) {
	// 2x3:
	// 1 2 3
	// 4 5 6
	x := grid(t, []float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r, err := Rotate90(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	// CCW -> 3x2:
	// 3 6
	// 2 5
	// 1 4
	want := []float64{3, 6, 2, 5, 1, 4}
	for i, v := range r.Data() {
		if v != want[i] {
			t.Fatalf("rotated=%v", r.Data())
		}
	}
	if r.Dim(0) != 3 || r.Dim(1) != 2 {
		t.Fatalf("shape=%v", r.Shape())
	}
}

func TestRotate360Identity(t *testing.T) {
	x := grid(t, []float64{1, 2, 3, 4}, 2, 2)
	r, err := Rotate90(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r.Data() {
		if v != x.Data()[i] {
			t.Fatal("4 turns must be identity")
		}
	}
}

func TestRotateNegativeTurns(t *testing.T) {
	x := grid(t, []float64{1, 2, 3, 4, 5, 6}, 2, 3)
	cw, err := Rotate90(x, -1)
	if err != nil {
		t.Fatal(err)
	}
	ccw3, err := Rotate90(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cw.Data() {
		if cw.Data()[i] != ccw3.Data()[i] {
			t.Fatal("-1 turn must equal 3 turns")
		}
	}
}

func TestRotateRankError(t *testing.T) {
	if _, err := Rotate90(tensor.New(2, 2, 2), 1); err == nil {
		t.Fatal("want rank error")
	}
}

func TestFlipHorizontal(t *testing.T) {
	x := grid(t, []float64{1, 2, 3, 4, 5, 6}, 2, 3)
	f, err := FlipHorizontal(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1, 6, 5, 4}
	for i, v := range f.Data() {
		if v != want[i] {
			t.Fatalf("flipped=%v", f.Data())
		}
	}
}

func TestFlipVertical(t *testing.T) {
	x := grid(t, []float64{1, 2, 3, 4, 5, 6}, 2, 3)
	f, err := FlipVertical(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 5, 6, 1, 2, 3}
	for i, v := range f.Data() {
		if v != want[i] {
			t.Fatalf("flipped=%v", f.Data())
		}
	}
}

func TestFlipRankErrors(t *testing.T) {
	if _, err := FlipHorizontal(tensor.New(3)); err == nil {
		t.Fatal("want rank error")
	}
	if _, err := FlipVertical(tensor.New(3)); err == nil {
		t.Fatal("want rank error")
	}
}

func TestDoubleFlipIdentity(t *testing.T) {
	x := grid(t, []float64{1, 2, 3, 4}, 2, 2)
	f1, _ := FlipHorizontal(x)
	f2, err := FlipHorizontal(f1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data() {
		if f2.Data()[i] != x.Data()[i] {
			t.Fatal("double flip must be identity")
		}
	}
}

func TestAddGaussianNoise(t *testing.T) {
	x := tensor.Full(10, 1000)
	n, err := AddGaussianNoise(x, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if x.At(0) != 10 {
		t.Fatal("input mutated")
	}
	if math.Abs(n.Mean()-10) > 0.2 {
		t.Fatalf("noisy mean=%v", n.Mean())
	}
	if math.Abs(n.Std()-1) > 0.2 {
		t.Fatalf("noisy std=%v", n.Std())
	}
}

func TestAddGaussianNoisePreservesNaN(t *testing.T) {
	x, _ := tensor.FromSlice([]float64{1, math.NaN()}, 2)
	n, err := AddGaussianNoise(x, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(n.At(1)) {
		t.Fatal("NaN must survive noising")
	}
}

func TestAddGaussianNoiseDeterministic(t *testing.T) {
	x := tensor.Full(0, 10)
	a, _ := AddGaussianNoise(x, 1, 5)
	b, _ := AddGaussianNoise(x, 1, 5)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("same seed must give same noise")
		}
	}
}

func TestAddGaussianNoiseNegativeSigma(t *testing.T) {
	if _, err := AddGaussianNoise(tensor.New(1), -1, 0); err == nil {
		t.Fatal("want sigma error")
	}
}

func TestMixup(t *testing.T) {
	a := tensor.Full(0, 4)
	b := tensor.Full(10, 4)
	m, err := Mixup(a, b, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Data() {
		if math.Abs(v-7) > 1e-12 { // 0.3*0 + 0.7*10
			t.Fatalf("mixup=%v", m.Data())
		}
	}
}

func TestMixupErrors(t *testing.T) {
	if _, err := Mixup(tensor.New(2), tensor.New(3), 0.5); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := Mixup(tensor.New(2), tensor.New(2), 1.5); err == nil {
		t.Fatal("want lambda error")
	}
}

func TestPolicyApplyCountsAndLabels(t *testing.T) {
	samples := []*tensor.Tensor{
		tensor.Full(1, 4, 4),
		tensor.Full(2, 4, 4),
	}
	p := Policy{Rotations: true, Flips: true, NoiseSigma: 0.1, MixupPairs: 3, Seed: 1}
	out, err := p.Apply(samples)
	if err != nil {
		t.Fatal(err)
	}
	// 2 originals + 2*(3 rot + 2 flip + 1 noise) + 3 mixup = 2+12+3 = 17.
	if len(out) != 17 {
		t.Fatalf("outputs=%d", len(out))
	}
	labels, err := p.ExpandLabels([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(out) {
		t.Fatalf("labels=%d outputs=%d", len(labels), len(out))
	}
	if labels[0] != "a" || labels[1] != "b" {
		t.Fatalf("labels=%v", labels[:2])
	}
}

func TestPolicyMultiplier(t *testing.T) {
	if m := (Policy{}).Multiplier(); m != 1 {
		t.Fatalf("empty policy multiplier=%d", m)
	}
	p := Policy{Rotations: true, Flips: true, NoiseSigma: 1}
	if m := p.Multiplier(); m != 7 {
		t.Fatalf("full policy multiplier=%d", m)
	}
}

func TestPolicyApplyEmpty(t *testing.T) {
	if _, err := (Policy{}).Apply(nil); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := (Policy{}).ExpandLabels(nil); err == nil {
		t.Fatal("want empty error")
	}
}

func TestPolicyApplyOriginalsFirst(t *testing.T) {
	s := tensor.Full(5, 2, 2)
	out, err := Policy{Flips: true}.Apply([]*tensor.Tensor{s})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != s {
		t.Fatal("original must be first")
	}
}

// Property: rotations and flips preserve the multiset of values (sum and
// element count are invariant).
func TestGeometryPreservesValuesProperty(t *testing.T) {
	f := func(seed int64, hRaw, wRaw uint8, turns int8) bool {
		h, w := int(hRaw)%6+1, int(wRaw)%6+1
		vals := make([]float64, h*w)
		for i := range vals {
			vals[i] = float64((seed+int64(i*2654435761))%1000) * 0.5
		}
		x, err := tensor.FromSlice(vals, h, w)
		if err != nil {
			return false
		}
		r, err := Rotate90(x, int(turns))
		if err != nil {
			return false
		}
		fh, err := FlipHorizontal(x)
		if err != nil {
			return false
		}
		const eps = 1e-9
		return math.Abs(r.Sum()-x.Sum()) < eps &&
			math.Abs(fh.Sum()-x.Sum()) < eps &&
			r.Numel() == x.Numel()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRotate90(b *testing.B) {
	x := tensor.New(256, 256)
	for i := range x.Data() {
		x.Data()[i] = float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Rotate90(x, 1); err != nil {
			b.Fatal(err)
		}
	}
}
