package server

import (
	"fmt"
	"testing"
)

// BenchmarkServeThroughput measures concurrent batch streaming against
// a live draid server: N clients each stream the full shard set of one
// completed climate job. The MiB/s metric is the serving-tier headline
// number future PRs track.
func BenchmarkServeThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("clients%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunServeBenchmark(ServeBenchConfig{Clients: clients, BatchSize: 16, Passes: 2})
				if err != nil {
					b.Fatal(err)
				}
				if res.Batches == 0 {
					b.Fatal("no batches streamed")
				}
				b.ReportMetric(res.BytesPerSec/(1024*1024), "MiB/s")
				b.ReportMetric(res.BatchesPerSec, "batches/s")
			}
		})
	}
}

// BenchmarkServeThroughputBackends compares the same streaming load
// across the three store backends: in-memory, durable files, and the
// striped parallel-FS simulation (stripe contention included).
func BenchmarkServeThroughputBackends(b *testing.B) {
	for _, backend := range []string{"mem", "fs", "parfs"} {
		b.Run(backend, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunServeBenchmark(ServeBenchConfig{Clients: 4, BatchSize: 16, Passes: 2, Backend: backend})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.BytesPerSec/(1024*1024), "MiB/s")
			}
		})
	}
}

// BenchmarkClusterThroughput measures fleet serving: jobs spread across
// a 3-node consistent-hash fleet over one shared dir, streams entering
// through rotating members so most reads cross the proxy.
func BenchmarkClusterThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunClusterBenchmark(ClusterBenchConfig{Nodes: 3, Jobs: 3, Clients: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BytesPerSec/(1024*1024), "MiB/s")
		b.ReportMetric(float64(res.Proxied), "proxied")
	}
}

// TestRunClusterBenchmark smoke-checks the fleet harness end to end:
// every stream completes, ownership covers all jobs, and at least one
// request crossed the proxy (rotating entry nodes guarantees it).
func TestRunClusterBenchmark(t *testing.T) {
	res, err := RunClusterBenchmark(ClusterBenchConfig{Nodes: 2, Jobs: 2, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches == 0 || res.Samples == 0 {
		t.Fatalf("no data streamed: %+v", res)
	}
	owned := 0
	for _, n := range res.JobsPerNode {
		owned += n
	}
	if owned != res.Jobs {
		t.Fatalf("ownership map covers %d of %d jobs: %v", owned, res.Jobs, res.JobsPerNode)
	}
	if res.Proxied == 0 {
		t.Fatal("no requests crossed the proxy")
	}
}

// TestRunServeComparison checks the same-run relative gate metric: both
// backends stream real data and the ratio is positive and finite.
func TestRunServeComparison(t *testing.T) {
	rep, err := RunServeComparison(ServeBenchConfig{Clients: 2, BatchSize: 16, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mem == nil || rep.FS == nil || rep.Mem.Samples == 0 || rep.FS.Samples == 0 {
		t.Fatalf("comparison missing a side: %+v", rep)
	}
	if rep.FSOverMem <= 0 {
		t.Fatalf("fs/mem ratio %v, want positive", rep.FSOverMem)
	}
}
