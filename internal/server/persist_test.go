package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// streamAll fetches the full batch stream body, byte for byte.
func streamAll(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCrashRecovery is the acceptance path for durability: run jobs to
// completion against a data dir, kill the server, recreate it from the
// same dir, and require the job list, manifests, and streamed batches
// to be byte-identical — including a bio job whose shards rest sealed
// and whose key round-trips through the sealed job log.
func TestCrashRecovery(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := New(Options{Workers: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	climateID, err := SubmitAndWait(ts1.URL, JobSpec{Domain: core.Climate, Name: "c", Seed: 3, Months: 24, Lat: 16, Lon: 32}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bioID, err := SubmitAndWait(ts1.URL, JobSpec{Domain: core.BioHealth, Name: "b", Seed: 3, Subjects: 12}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	var listBefore []JobStatus
	if code := getJSON(t, ts1.URL+"/v1/jobs", &listBefore); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	climateStream := streamAll(t, ts1.URL+"/v1/jobs/"+climateID+"/batches?batch_size=4")
	bioStream := streamAll(t, ts1.URL+"/v1/jobs/"+bioID+"/batches?batch_size=4")

	// Kill: no graceful manifest handoff beyond what is already on disk.
	ts1.Close()
	s1.Close()

	s2, err := New(Options{Workers: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)

	var listAfter []JobStatus
	if code := getJSON(t, ts2.URL+"/v1/jobs", &listAfter); code != http.StatusOK {
		t.Fatalf("restart list status %d", code)
	}
	if len(listAfter) != len(listBefore) {
		t.Fatalf("restart lists %d jobs, want %d", len(listAfter), len(listBefore))
	}
	for i := range listBefore {
		b, a := listBefore[i], listAfter[i]
		if a.ID != b.ID || a.State != b.State || a.Records != b.Records ||
			a.Shards != b.Shards || a.Servable != b.Servable || a.Spec != b.Spec {
			t.Fatalf("job %d changed across restart:\nbefore %+v\nafter  %+v", i, b, a)
		}
		if len(a.Trajectory) != len(b.Trajectory) {
			t.Fatalf("job %s trajectory %d points after restart, want %d", a.ID, len(a.Trajectory), len(b.Trajectory))
		}
	}

	for _, tc := range []struct {
		id   string
		want []byte
	}{{climateID, climateStream}, {bioID, bioStream}} {
		got := streamAll(t, ts2.URL+"/v1/jobs/"+tc.id+"/batches?batch_size=4")
		if string(got) != string(tc.want) {
			t.Fatalf("job %s stream differs across restart (%d vs %d bytes)", tc.id, len(got), len(tc.want))
		}
	}

	// Resume an interrupted stream across the restart: take the cursor
	// after the first batch served by s1 and continue on s2.
	var first BatchWire
	firstLine := climateStream[:indexByte(climateStream, '\n')]
	if err := json.Unmarshal(firstLine, &first); err != nil {
		t.Fatal(err)
	}
	rest := streamAll(t, ts2.URL+"/v1/jobs/"+climateID+"/batches?batch_size=4&cursor="+first.Cursor)
	if string(firstLine)+"\n"+restAdjusted(rest) != string(climateStream) {
		t.Fatalf("resumed stream does not complete the original")
	}

	// New submissions on the restarted server must not collide with
	// replayed job IDs.
	newID, err := SubmitAndWait(ts2.URL, JobSpec{Domain: core.Materials, Structures: 6}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if newID == climateID || newID == bioID {
		t.Fatalf("restarted server reused job ID %s", newID)
	}
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return len(b)
}

// restAdjusted renumbers a resumed stream's batch indices to continue
// the original count, so concatenation can be compared byte-for-byte.
func restAdjusted(rest []byte) string {
	out := ""
	idx := 1
	for len(rest) > 0 {
		i := indexByte(rest, '\n')
		var wire BatchWire
		if err := json.Unmarshal(rest[:i], &wire); err != nil {
			return "unparsable: " + err.Error()
		}
		wire.Batch = idx
		idx++
		b, _ := json.Marshal(&wire)
		out += string(b) + "\n"
		rest = rest[i+1:]
	}
	return out
}

// pinnedStore returns a NewStore hook that deterministically pins the
// single worker: the first store allocation blocks until release
// closes, then fails, so the job occupying the worker can never finish
// before shutdown and every later submission provably stays queued.
// Subsequent allocations use the normal durable FSSink.
func pinnedStore(dataDir string, release <-chan struct{}) func(string) (shard.Store, error) {
	var mu sync.Mutex
	pinned := false
	return func(id string) (shard.Store, error) {
		mu.Lock()
		first := !pinned
		pinned = true
		mu.Unlock()
		if first {
			<-release
			return nil, fmt.Errorf("store released after shutdown began")
		}
		return shard.NewFSSink(filepath.Join(dataDir, "jobs", id))
	}
}

// TestRestartMarksInterruptedJobs: a job still queued when the process
// dies cannot be resurrected (its output was never committed), so the
// restarted server must report it failed rather than lose it.
func TestRestartMarksInterruptedJobs(t *testing.T) {
	dataDir := t.TempDir()
	release := make(chan struct{})
	s1, err := New(Options{Workers: 1, DataDir: dataDir, QueueDepth: 8,
		NewStore: pinnedStore(dataDir, release)})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	// The first job pins the single worker (its store allocation blocks
	// until shutdown); the next submission provably stays queued.
	if _, code := postJob(t, ts1.URL, JobSpec{Domain: core.Climate, Months: 12, Lat: 8, Lon: 16}); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	queued, code := postJob(t, ts1.URL, JobSpec{Domain: core.Materials, Structures: 6})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	go func() { <-s1.stop; close(release) }()
	ts1.Close()
	s1.Close()

	s2, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)
	var st JobStatus
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+queued.ID, &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.State != JobFailed {
		t.Fatalf("interrupted job state %q, want failed", st.State)
	}
}

// TestJobEviction: completed jobs past the TTL are dropped, their
// shard directories deleted, and a restart does not resurrect them.
func TestJobEviction(t *testing.T) {
	dataDir := t.TempDir()
	s, err := New(Options{Workers: 1, DataDir: dataDir, JobTTL: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Months: 12, Lat: 8, Lon: 16}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dataDir, "jobs", id)
	if _, err := os.Stat(shardDir); err != nil {
		t.Fatalf("shard dir missing while job live: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, nil); code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job not evicted after TTL")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := os.Stat(shardDir); !os.IsNotExist(err) {
		t.Fatalf("evicted job's shard dir still present: %v", err)
	}
	ts.Close()
	s.Close()

	// Replay must honor the eviction record.
	s2, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+id, nil); code != http.StatusNotFound {
		t.Fatalf("evicted job resurrected with status %d", code)
	}
}

// TestEvictionReclaimsRestoredJobDirs: a job restored without an
// attached store (non-servable domains keep no read handle) still owns
// a shard directory on disk; evicting it must reclaim that space.
func TestEvictionReclaimsRestoredJobDirs(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	id, err := SubmitAndWait(ts1.URL, JobSpec{Domain: core.Fusion, Shots: 4}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close()
	shardDir := filepath.Join(dataDir, "jobs", id)
	if _, err := os.Stat(shardDir); err != nil {
		t.Fatalf("fusion job left no shard dir: %v", err)
	}

	s2, err := New(Options{Workers: 1, DataDir: dataDir, JobTTL: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, ts2.URL+"/v1/jobs/"+id, nil); code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restored job never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The 404 becomes visible when the job leaves the table; the shard
	// directory is deleted just after, outside the server lock — poll
	// briefly instead of racing that window.
	for {
		if _, err := os.Stat(shardDir); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted restored job's shard dir still on disk")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobEvictionLRUBound: MaxJobs retains only the most recently
// served completed jobs.
func TestJobEvictionLRUBound(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1})
	first, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Materials, Structures: 6}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	second, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Materials, Structures: 6}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The second completion triggers eviction of the least recently
	// accessed completed job (the first).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+first, nil); code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("LRU eviction never happened")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+second, nil); code != http.StatusOK {
		t.Fatalf("most recent job evicted (status %d)", code)
	}
}

// TestJobLogTornTail: a crash mid-append leaves a partial final line;
// replay must drop it and keep every complete record.
func TestJobLogTornTail(t *testing.T) {
	dataDir := t.TempDir()
	s, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Months: 12, Lat: 8, Lon: 16}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	s.Close()

	logPath := filepath.Join(dataDir, "jobs.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"submitted","id":"job-9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)
	var st JobStatus
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+id, &st); code != http.StatusOK || st.State != JobDone {
		t.Fatalf("job lost behind torn tail: code=%d state=%s", code, st.State)
	}
}

// TestMasterKeyRoundTrip pins the sealed-key envelope: a key sealed
// for one job must not open for another.
func TestMasterKeyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	master, err := loadOrCreateMasterKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	again, err := loadOrCreateMasterKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(master) != string(again) {
		t.Fatal("master key not stable across loads")
	}
	jobKey := make([]byte, 32)
	for i := range jobKey {
		jobKey[i] = byte(i)
	}
	sealed, err := sealJobKey(master, jobKey, "job-000007")
	if err != nil {
		t.Fatal(err)
	}
	got, err := unsealJobKey(master, sealed, "job-000007")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(jobKey) {
		t.Fatal("job key corrupted by seal round trip")
	}
	if _, err := unsealJobKey(master, sealed, "job-000008"); err == nil {
		t.Fatal("sealed key opened under the wrong job ID")
	}
}
