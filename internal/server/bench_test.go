package server

import (
	"fmt"
	"testing"
)

// BenchmarkServeThroughput measures concurrent batch streaming against
// a live draid server: N clients each stream the full shard set of one
// completed climate job. The MiB/s metric is the serving-tier headline
// number future PRs track.
func BenchmarkServeThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("clients%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunServeBenchmark(ServeBenchConfig{Clients: clients, BatchSize: 16, Passes: 2})
				if err != nil {
					b.Fatal(err)
				}
				if res.Batches == 0 {
					b.Fatal("no batches streamed")
				}
				b.ReportMetric(res.BytesPerSec/(1024*1024), "MiB/s")
				b.ReportMetric(res.BatchesPerSec, "batches/s")
			}
		})
	}
}

// BenchmarkServeThroughputBackends compares the same streaming load
// across the three store backends: in-memory, durable files, and the
// striped parallel-FS simulation (stripe contention included).
func BenchmarkServeThroughputBackends(b *testing.B) {
	for _, backend := range []string{"mem", "fs", "parfs"} {
		b.Run(backend, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunServeBenchmark(ServeBenchConfig{Clients: 4, BatchSize: 16, Passes: 2, Backend: backend})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.BytesPerSec/(1024*1024), "MiB/s")
			}
		})
	}
}
