// Package client is the supported Go SDK for the draid service. It
// owns the REST API's wire types (the server serves exactly these
// structs), submits and follows jobs, and streams training batches in
// either wire format — auto-negotiating the binary frame protocol,
// falling back to NDJSON against older servers, and resuming from the
// last cursor when a stream is cut mid-flight.
package client

import (
	"time"

	"repro/internal/domain"
	"repro/internal/ledger"
	"repro/internal/telemetry"
)

// JobSpec is the submission body: which domain template to run and how
// large a synthetic input to prepare (see domain.Spec for the knobs
// and their ceilings).
type JobSpec = domain.Spec

// JobState is the lifecycle position of a submitted job.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// TrajectoryPoint is one stage of a job's readiness trajectory — the
// Table 2 walk exposed over the API.
type TrajectoryPoint struct {
	Stage     string   `json:"stage"`
	Kind      string   `json:"kind"`
	Level     int      `json:"level"`
	LevelName string   `json:"level_name"`
	Gaps      []string `json:"gaps,omitempty"`
}

// JobStatus is the JSON view of a job, as served by /v1/jobs/{id}.
type JobStatus struct {
	ID        string     `json:"id"`
	Spec      JobSpec    `json:"spec"`
	State     JobState   `json:"state"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Records   int64      `json:"records"`
	Shards    int        `json:"shards"`
	// Kind names the wire payload schema /batches streams for this
	// job's domain (see /v1/templates for the catalog), and Wires the
	// formats that schema can be streamed in ("ndjson", "frame").
	Kind       string            `json:"kind,omitempty"`
	Wires      []string          `json:"wires,omitempty"`
	Servable   bool              `json:"servable"`
	Trajectory []TrajectoryPoint `json:"trajectory,omitempty"`
	// Node is the fleet member holding the job (empty single-node).
	Node string `json:"node,omitempty"`
	// Tenant owns the job on a multi-tenant server (empty with auth
	// off, or for jobs submitted before tenancy was enabled).
	Tenant string `json:"tenant,omitempty"`
	// Trace is the request trace ID the server answered with (from the
	// X-Draid-Trace response header, not the JSON body) — the handle for
	// correlating this submission across fleet members' logs.
	Trace string `json:"-"`
}

// Lifecycle event names appearing in a job's event timeline.
const (
	EventSubmitted = "submitted" // accepted by a fleet member
	EventQueued    = "queued"    // waiting for a worker slot
	EventRunning   = "running"   // pipeline started
	EventDone      = "done"      // pipeline finished; shards servable
	EventFailed    = "failed"    // pipeline errored or was lost
	EventEvicted   = "evicted"   // retention removed the job
	EventAdopted   = "adopted"   // another member took ownership after a failure
	EventRequeued  = "requeued"  // interrupted job resubmitted for a clean rerun
)

// JobEvent is one entry in a job's lifecycle timeline, served by
// GET /v1/jobs/{id}/events. Events survive server restarts: the
// timeline is replayed from the persistent job log, so pre-restart
// transitions (with the node that performed them) remain visible.
type JobEvent struct {
	Event  string    `json:"event"`
	Time   time.Time `json:"time"`
	Node   string    `json:"node,omitempty"`
	Detail string    `json:"detail,omitempty"`
	Trace  string    `json:"trace,omitempty"`
}

// TemplateInfo is the catalog entry served by /v1/templates. Kind
// names the payload schema /batches streams for the domain, Wires the
// negotiable wire formats, and Servable says whether completed jobs
// stream at all — discovery fields so clients pick a decoder instead
// of probing.
type TemplateInfo struct {
	Domain      string   `json:"domain"`
	Description string   `json:"description"`
	Kind        string   `json:"kind"`
	Wires       []string `json:"wires,omitempty"`
	Servable    bool     `json:"servable"`
}

// Span is one completed span of a distributed trace, as served by
// GET /v1/traces/{id}: the operation name, the node that ran it, its
// wall-clock interval, and its position in the tree (Parent is the
// span ID of the enclosing operation, empty for top-level spans).
type Span = telemetry.SpanData

// TraceSummary is one row of GET /v1/traces: the trace's root
// operation, where and when it ran, how long it took, and whether the
// tail sampler kept it as notable.
type TraceSummary = telemetry.TraceSummary

// TraceView is the assembled cross-node trace served by
// GET /v1/traces/{id}: every span any fleet member recorded under the
// trace ID, deduplicated and sorted by start time.
type TraceView struct {
	TraceID string `json:"trace"`
	Spans   []Span `json:"spans"`
}

// ClusterMember is one fleet member's row in the /v1/cluster report.
type ClusterMember struct {
	ID        string    `json:"id"`
	URL       string    `json:"url"`
	Self      bool      `json:"self,omitempty"`
	Alive     bool      `json:"alive"`
	Share     float64   `json:"share"`
	LastProbe time.Time `json:"last_probe,omitzero"`
	Failures  int       `json:"consecutive_failures,omitempty"`
}

// JobOwnership answers /v1/cluster?job=<id>: which member owns the ID.
type JobOwnership struct {
	ID    string `json:"id"`
	Owner string `json:"owner"`
	URL   string `json:"url"`
	Local bool   `json:"local"`
}

// AuditRecord is one hash-chained entry of a node's audit ledger.
type AuditRecord = ledger.Record

// AuditBatchRoot is one published Merkle batch root of the ledger —
// the anchor an inclusion proof is verified against.
type AuditBatchRoot = ledger.BatchRoot

// AuditProof is a Merkle inclusion proof for one audit record; its
// Verify method checks it end to end, and comparing its Root against
// an independently fetched AuditRoots entry completes the audit.
type AuditProof = ledger.Proof

// AuditRoots is the GET /v1/audit/roots document: which node's ledger
// answered, how many records it holds, and every batch root (the final
// entry may be a provisional root over the unsealed tail).
type AuditRoots struct {
	Node    string           `json:"node"`
	Records uint64           `json:"records"`
	Roots   []AuditBatchRoot `json:"roots"`
}

// ClusterInfo is the /v1/cluster document.
type ClusterInfo struct {
	Clustered  bool            `json:"clustered"`
	Self       string          `json:"self,omitempty"`
	VNodes     int             `json:"vnodes,omitempty"`
	Members    []ClusterMember `json:"members,omitempty"`
	JobsLocal  int             `json:"jobs_local"`
	Registered []string        `json:"registered_nodes,omitempty"`
	Job        *JobOwnership   `json:"job,omitempty"`
}
