// Command benchreport regenerates every paper artifact from running code:
// Figure 1 (the raw→AI-ready flow), Table 1 (the four domain archetype
// pipelines), Table 2 (the maturity matrix), and the quantitative claims
// C1 (parallel I/O scaling), C2 (curation-time share), and C3 (iterative
// feedback). EXPERIMENTS.md records paper-vs-measured for each.
//
// The serve experiment benchmarks the draid serving tier (N concurrent
// clients streaming batches over HTTP) and writes its result to
// BENCH_serve.json alongside the console report, so serving throughput
// is tracked the same way as the pipeline benchmarks. With -compare it
// also gates CI: the fresh run is compared against a committed
// baseline BENCH_serve.json and the process exits non-zero when serve
// throughput regressed more than -compare-threshold.
//
// Usage:
//
//	benchreport               # run everything
//	benchreport -exp table1   # one experiment: fig1|table1|table2|scaling|curation|feedback|serve
//	benchreport -exp serve -compare BENCH_serve.json   # regression gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"slices"
	"strings"

	"repro/internal/experiments"
	"repro/internal/server"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig1|table1|table2|scaling|curation|feedback|serve")
	seed := flag.Int64("seed", 1, "experiment seed")
	scaleMB := flag.Int("scale-mb", 16, "C1: megabytes to shard")
	shots := flag.Int("curation-shots", 8, "C2: shots in the curation comparison")
	serveClients := flag.Int("serve-clients", 8, "serve: concurrent streaming clients")
	servePasses := flag.Int("serve-passes", 2, "serve: streaming passes per client")
	serveJSON := flag.String("serve-json", "BENCH_serve.json", "serve: result file (empty disables)")
	serveBackend := flag.String("serve-backend", "mem", "serve: shard store backend (mem|fs|parfs)")
	compare := flag.String("compare", "", "serve: baseline BENCH_serve.json to gate against (empty disables)")
	compareThreshold := flag.Float64("compare-threshold", 0.20, "serve: max tolerated fractional throughput regression")
	flag.Parse()
	log.SetFlags(0)

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("benchreport %s: %v", name, err)
		}
		fmt.Println()
	}

	run("fig1", func() error {
		res, err := experiments.RunFig1(24, 16, 32, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("table1", func() error {
		rows, err := experiments.RunTable1(*seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
		return nil
	})

	run("table2", func() error {
		res, err := experiments.RunTable2()
		if err != nil {
			return err
		}
		fmt.Printf("Table 2 reproduction — maturity matrix: %d populated cells, %d grey (N/A) cells, monotone=%t\n",
			res.PopulatedCells, res.GreyCells, res.Monotone)
		fmt.Println("Trajectory of a dataset advanced level by level (final state):")
		fmt.Print(res.Rendered[len(res.Rendered)-1])
		return nil
	})

	run("scaling", func() error {
		points, err := experiments.RunScaling(*scaleMB, []int{1, 2, 4, 8, 16}, 8)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScaling(points, *scaleMB, 8))
		return nil
	})

	run("curation", func() error {
		res, err := experiments.RunCuration(*shots, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("feedback", func() error {
		res, err := experiments.RunFeedback(400, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("serve", func() error {
		res, err := server.RunServeBenchmark(server.ServeBenchConfig{
			Clients: *serveClients, BatchSize: 16, Passes: *servePasses,
			Backend: *serveBackend,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if *serveJSON != "" {
			b, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*serveJSON, append(b, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *serveJSON)
		}
		if *compare != "" {
			return compareServe(res, *compare, *compareThreshold)
		}
		return nil
	})

	known := []string{"fig1", "table1", "table2", "scaling", "curation", "feedback", "serve"}
	if *exp != "all" && !slices.Contains(known, *exp) {
		log.Fatalf("benchreport: unknown experiment %q (want all|%s)", *exp, strings.Join(known, "|"))
	}
}

// compareServe gates serve throughput against a committed baseline:
// a fresh result more than threshold below the baseline's samples/sec
// is a regression and fails the process (CI turns that into a red
// build). Improvements are reported and always pass.
func compareServe(cur *server.ServeBenchResult, baselinePath string, threshold float64) error {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var base server.ServeBenchResult
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("compare: decode %s: %w", baselinePath, err)
	}
	baseRate := float64(base.Samples) / base.Seconds
	curRate := float64(cur.Samples) / cur.Seconds
	if base.Seconds <= 0 || baseRate <= 0 {
		return fmt.Errorf("compare: baseline %s has no throughput", baselinePath)
	}
	delta := curRate/baseRate - 1
	fmt.Printf("serve throughput vs %s: %.0f samples/s now, %.0f baseline (%+.1f%%)\n",
		baselinePath, curRate, baseRate, delta*100)
	if delta < -threshold {
		return fmt.Errorf("serve throughput regressed %.1f%% (budget %.0f%%)", -delta*100, threshold*100)
	}
	return nil
}
