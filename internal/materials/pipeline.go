package materials

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/formats/bp"
	"repro/internal/pipeline"
	"repro/internal/shard"
	"repro/internal/split"
	"repro/internal/stats"
)

// Config tunes the materials archetype pipeline.
type Config struct {
	Cutoff  float64 // neighbor cutoff (Angstrom)
	Workers int
	// Ranks is the number of simulated parallel writers producing BP
	// process groups (the ADIOS aggregation pattern).
	Ranks int
	// ShardTarget rotates the persisted per-graph shard series at this
	// raw size. <=0 means 8 KiB.
	ShardTarget int64
	Seed        int64
}

// DefaultConfig matches the reproduction experiments.
func DefaultConfig() Config { return Config{Cutoff: 4.0, Workers: 4, Ranks: 4, Seed: 1} }

// Product accumulates the materials pipeline's outputs.
type Product struct {
	POSCARs    []string
	Structures []*Structure
	Graphs     []*Graph
	Stats      *DescriptorStats
	Split      *split.Result
	// BP is the finalized ADIOS-style container holding the train split.
	BP       []byte
	ClassIDs map[string]int
	// Manifest indexes the durable per-graph shard set (one
	// self-describing BP process group per record) written to the
	// pipeline's sink — the replayable serving artifact.
	Manifest *shard.Manifest
	// Imbalance is the train-split class imbalance ratio (Table 1
	// challenge diagnostics).
	Imbalance float64
}

// NewDataset wraps raw POSCAR texts for the pipeline.
func NewDataset(name string, poscars []string) *pipeline.Dataset {
	total := 0
	for _, p := range poscars {
		total += len(p)
	}
	ds := pipeline.NewDataset(name, core.Materials, &Product{POSCARs: poscars})
	ds.Bytes = int64(total)
	ds.Records = int64(len(poscars))
	return ds
}

func product(ds *pipeline.Dataset) (*Product, error) {
	p, ok := ds.Payload.(*Product)
	if !ok {
		return nil, fmt.Errorf("materials: payload is %T, want *Product", ds.Payload)
	}
	return p, nil
}

// NewPipeline assembles the Table 1 materials workflow: parse simulations
// → normalize descriptors → graph encoding → shard (ADIOS/BP). The shard
// stage both finalizes the in-memory BP container (Product.BP) and, when
// sink is non-nil, persists the train split as a durable shard set — one
// self-describing BP process group per record — so materials jobs are
// replayable and streamable like every other domain's.
func NewPipeline(cfg Config, sink shard.Sink) (*pipeline.Pipeline, error) {
	if cfg.Cutoff <= 0 {
		return nil, fmt.Errorf("materials: cutoff %v must be positive", cfg.Cutoff)
	}
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("materials: ranks=%d must be positive", cfg.Ranks)
	}
	if cfg.ShardTarget <= 0 {
		cfg.ShardTarget = 8 << 10
	}

	parse := pipeline.StageFunc{StageName: "parse-poscar", StageKind: core.Ingest, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		if len(p.POSCARs) == 0 {
			return errors.New("materials: no POSCAR inputs on payload")
		}
		p.Structures = make([]*Structure, len(p.POSCARs))
		if err := pipeline.ForEach(len(p.POSCARs), cfg.Workers, func(i int) error {
			s, err := ParsePOSCAR(p.POSCARs[i])
			if err != nil {
				return fmt.Errorf("input %d: %w", i, err)
			}
			p.Structures[i] = s
			return nil
		}); err != nil {
			return err
		}
		ds.Facts.StandardFormat = true
		ds.Facts.Validated = true
		ds.Facts.MissingRate = 0
		ds.Facts.AlignedGrids = true // periodic cells are already consistent frames
		ds.SetMeta("source", "DFT-like synthetic archive")
		ds.SetMeta("structures", fmt.Sprintf("%d", len(p.Structures)))
		ds.SetMeta("format", "POSCAR")
		return nil
	}}

	encode := pipeline.StageFunc{StageName: "graph-encode", StageKind: core.Preprocess, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		p.Graphs = make([]*Graph, len(p.Structures))
		if err := pipeline.ForEach(len(p.Structures), cfg.Workers, func(i int) error {
			cutoff := cfg.Cutoff
			if half := p.Structures[i].Lattice / 2; cutoff > half {
				cutoff = half // clamp per structure to keep minimum image valid
			}
			g, err := BuildGraph(p.Structures[i], cutoff)
			if err != nil {
				return err
			}
			p.Graphs[i] = g
			return nil
		}); err != nil {
			return err
		}
		return nil
	}}

	normalize := pipeline.StageFunc{StageName: "normalize-descriptors", StageKind: core.Transform, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		p.Stats, err = ComputeDescriptorStats(p.Graphs)
		if err != nil {
			return err
		}
		for _, g := range p.Graphs {
			NormalizeDescriptors(g, p.Stats)
		}
		ds.Facts.Normalized = true
		ds.Facts.LabelCoverage = 1 // DFT archives are fully labeled (energies/classes)
		ds.SetMeta("norm_mean_z", fmt.Sprintf("%.4f", p.Stats.MeanZ))
		return nil
	}}

	structure := pipeline.StageFunc{StageName: "assign-class-ids", StageKind: core.Structure, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		p.ClassIDs = make(map[string]int)
		for i, c := range SortedClasses(p.Structures) {
			p.ClassIDs[c] = i
		}
		ds.Facts.FeaturesExtracted = true
		ds.Facts.StructuredLayout = true
		return nil
	}}

	shardStage := pipeline.StageFunc{StageName: "bp-shard", StageKind: core.Shard, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		// Stratified split: preserve the (imbalanced) class distribution.
		labels := make([]string, len(p.Graphs))
		for i, g := range p.Graphs {
			labels[i] = g.Class
		}
		res, err := split.Stratified(labels, split.DefaultFractions(), cfg.Seed)
		if err != nil {
			return err
		}
		p.Split = res
		trainLabels := make([]string, 0, len(res.Train))
		for _, i := range res.Train {
			trainLabels = append(trainLabels, labels[i])
		}
		p.Imbalance = stats.NewClassBalance(trainLabels).ImbalanceRatio()

		// Ranks marshal their PGs concurrently; a coordinator appends.
		type pgOut struct {
			payload []byte
			metas   []bp.VarMeta
			step    int
		}
		perRank := make([][]pgOut, cfg.Ranks)
		if err := pipeline.ForEach(cfg.Ranks, cfg.Workers, func(rank int) error {
			step := 0
			for k := rank; k < len(res.Train); k += cfg.Ranks {
				g := p.Graphs[res.Train[k]]
				names, shapes, data := g.Flatten(p.ClassIDs)
				vars := make([]bp.Variable, len(names))
				for v := range names {
					vars[v] = bp.Variable{Name: names[v], Shape: shapes[v], Data: data[v]}
				}
				payload, metas, err := bp.MarshalPG(rank, step, vars)
				if err != nil {
					return err
				}
				perRank[rank] = append(perRank[rank], pgOut{payload: payload, metas: metas, step: step})
				step++
			}
			return nil
		}); err != nil {
			return err
		}
		w := bp.NewWriter()
		for rank, pgs := range perRank {
			for _, pg := range pgs {
				if err := w.AppendRawPG(rank, pg.step, pg.payload, pg.metas); err != nil {
					return err
				}
			}
		}
		p.BP, err = w.Finalize()
		if err != nil {
			return err
		}
		// Persist the same PG payloads as a durable shard set: each block
		// is self-describing, so one block per record streams back out
		// without the container's footer index.
		if sink != nil {
			sw, err := shard.NewWriter(sink, shard.Options{
				Prefix: "materials-train", TargetBytes: cfg.ShardTarget})
			if err != nil {
				return err
			}
			for rank := range perRank {
				for _, pg := range perRank[rank] {
					if err := sw.Write(pg.payload); err != nil {
						return err
					}
				}
			}
			p.Manifest, err = sw.Close()
			if err != nil {
				return err
			}
		}
		ds.Facts.SplitDone = true
		ds.Facts.Sharded = true
		ds.Facts.PipelineAutomated = true
		ds.Bytes = int64(len(p.BP))
		ds.Records = int64(len(res.Train))
		return nil
	}}

	return pipeline.New("materials-archetype", parse, encode, normalize, structure, shardStage)
}
